//! Branch-and-bound integer optimization over the lifetime LP.
//!
//! [`super::domatic_lp::exact_integral_lifetime`] explores the battery
//! state space and is limited to tiny `Π(b_v + 1)`. This solver instead
//! branches on the LP relaxation's fractional activation times, which
//! scales with the number of *minimal dominating sets* and the optimum's
//! fractionality rather than with battery size — complementary coverage,
//! and each validates the other in tests.
//!
//! Standard maximization B&B: solve the relaxation; if some `t_j` is
//! fractional, split into `t_j ≤ ⌊t_j⌋` and `t_j ≥ ⌈t_j⌉`; prune when the
//! relaxation bound cannot beat the incumbent. All inputs are integers,
//! so incumbent comparisons use a 1-unit integrality gap.

use crate::domatic_lp::ExactError;
use crate::enumerate::minimal_dominating_sets;
use crate::problem::LinearProgram;
use crate::simplex::{solve, LpSolution};
use domatic_graph::{Graph, NodeId};

const EPS: f64 = 1e-6;

/// An integral optimum with its witness schedule.
#[derive(Clone, Debug)]
pub struct IntegralOptimum {
    /// Optimal integral lifetime.
    pub lifetime: u64,
    /// `(dominating set, integer duration)` pairs with positive duration.
    pub schedule: Vec<(Vec<NodeId>, u64)>,
    /// Branch-and-bound nodes explored (diagnostics).
    pub nodes_explored: usize,
}

/// Solves the integral maximum-cluster-lifetime problem by branch and
/// bound over the dominating-set LP.
///
/// ```
/// use domatic_lp::ilp::branch_and_bound_lifetime;
/// use domatic_lp::figure1_instance;
///
/// let (g, b32) = figure1_instance();
/// let b: Vec<u64> = b32.iter().map(|&x| x as u64).collect();
/// let opt = branch_and_bound_lifetime(&g, &b, 1_000_000).unwrap();
/// assert_eq!(opt.lifetime, 6); // the paper's Figure 1 optimum
/// ```
pub fn branch_and_bound_lifetime(
    g: &Graph,
    batteries: &[u64],
    cap: usize,
) -> Result<IntegralOptimum, ExactError> {
    if batteries.len() != g.n() {
        return Err(ExactError::BatteryArity {
            expected: g.n(),
            got: batteries.len(),
        });
    }
    let sets = minimal_dominating_sets(g, cap)?;
    if g.n() == 0 {
        return Ok(IntegralOptimum {
            lifetime: 0,
            schedule: Vec::new(),
            nodes_explored: 0,
        });
    }
    let k = sets.len();
    // Static membership rows.
    let mut membership: Vec<Vec<f64>> = vec![vec![0.0; k]; g.n()];
    for (j, set) in sets.iter().enumerate() {
        for &v in set {
            membership[v as usize][j] = 1.0;
        }
    }
    // Per-variable bound intervals, tightened along branches. Upper bound
    // starts at each set's bottleneck battery.
    let ub0: Vec<u64> = sets
        .iter()
        .map(|s| s.iter().map(|&v| batteries[v as usize]).min().unwrap_or(0))
        .collect();

    struct BnB<'a> {
        membership: &'a [Vec<f64>],
        batteries: &'a [u64],
        k: usize,
        best: u64,
        best_x: Vec<u64>,
        nodes: usize,
    }

    impl BnB<'_> {
        fn relax(&self, lo: &[u64], hi: &[u64]) -> Option<(f64, Vec<f64>)> {
            let mut lp = LinearProgram::maximize(vec![1.0; self.k]);
            for (v, row) in self.membership.iter().enumerate() {
                lp.add_le(row.clone(), self.batteries[v] as f64);
            }
            for j in 0..self.k {
                let mut row = vec![0.0; self.k];
                row[j] = 1.0;
                lp.add_le(row.clone(), hi[j] as f64);
                if lo[j] > 0 {
                    lp.add_ge(row, lo[j] as f64);
                }
            }
            match solve(&lp) {
                LpSolution::Optimal { objective, x } => Some((objective, x)),
                LpSolution::Infeasible => None,
                LpSolution::Unbounded => unreachable!("bounded by battery rows"),
            }
        }

        fn run(&mut self, lo: Vec<u64>, hi: Vec<u64>) {
            self.nodes += 1;
            let Some((bound, x)) = self.relax(&lo, &hi) else {
                return;
            };
            // Integral data ⇒ the integral optimum is ≤ ⌊bound + eps⌋.
            if (bound + EPS).floor() as u64 <= self.best {
                return;
            }
            // Most fractional variable.
            let mut branch: Option<(usize, f64)> = None;
            for (j, &xj) in x.iter().enumerate() {
                let frac = (xj - xj.round()).abs();
                if frac > EPS {
                    let dist = (xj.fract() - 0.5).abs();
                    if branch.is_none_or(|(_, d)| dist < d) {
                        branch = Some((j, dist));
                    }
                }
            }
            match branch {
                None => {
                    // Integral solution.
                    let val: u64 = x.iter().map(|&v| v.round() as u64).sum();
                    if val > self.best {
                        self.best = val;
                        self.best_x = x.iter().map(|&v| v.round() as u64).collect();
                    }
                }
                Some((j, _)) => {
                    let xj = x[j];
                    // Down branch: t_j ≤ ⌊x_j⌋.
                    let mut hi_down = hi.clone();
                    hi_down[j] = xj.floor() as u64;
                    if hi_down[j] >= lo[j] {
                        self.run(lo.clone(), hi_down);
                    }
                    // Up branch: t_j ≥ ⌈x_j⌉.
                    let mut lo_up = lo;
                    lo_up[j] = xj.ceil() as u64;
                    if lo_up[j] <= hi[j] {
                        self.run(lo_up, hi);
                    }
                }
            }
        }
    }

    let mut bnb = BnB {
        membership: &membership,
        batteries,
        k,
        best: 0,
        best_x: vec![0; k],
        nodes: 0,
    };
    bnb.run(vec![0; k], ub0);

    let schedule = sets
        .into_iter()
        .zip(&bnb.best_x)
        .filter(|(_, &t)| t > 0)
        .map(|(s, &t)| (s, t))
        .collect();
    Ok(IntegralOptimum {
        lifetime: bnb.best,
        schedule,
        nodes_explored: bnb.nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domatic_lp::{exact_integral_lifetime, figure1_instance, lp_optimal_lifetime};
    use domatic_graph::generators::gnp::gnp;
    use domatic_graph::generators::regular::{complete, cycle, path, star};

    #[test]
    fn agrees_with_state_space_solver_on_small_instances() {
        for seed in 0..8 {
            let g = gnp(8, 0.4, seed);
            let b = vec![2u64; 8];
            let b32: Vec<u32> = b.iter().map(|&x| x as u32).collect();
            let bb = branch_and_bound_lifetime(&g, &b, 1_000_000).unwrap();
            let dfs = exact_integral_lifetime(&g, &b32, 1_000_000).unwrap();
            assert_eq!(bb.lifetime, dfs as u64, "seed {seed}");
        }
    }

    #[test]
    fn figure1_gives_six() {
        let (g, b32) = figure1_instance();
        let b: Vec<u64> = b32.iter().map(|&x| x as u64).collect();
        let opt = branch_and_bound_lifetimes_checked(&g, &b);
        assert_eq!(opt.lifetime, 6);
    }

    /// Helper: solve and sanity-check the witness schedule's feasibility.
    fn branch_and_bound_lifetimes_checked(g: &domatic_graph::Graph, b: &[u64]) -> IntegralOptimum {
        let opt = branch_and_bound_lifetime(g, b, 1_000_000).unwrap();
        let mut used = vec![0u64; g.n()];
        for (set, t) in &opt.schedule {
            for &v in set {
                used[v as usize] += t;
            }
        }
        for v in 0..g.n() {
            assert!(used[v] <= b[v], "node {v} over budget");
        }
        let total: u64 = opt.schedule.iter().map(|(_, t)| t).sum();
        assert_eq!(total, opt.lifetime);
        opt
    }

    #[test]
    fn handles_large_batteries_where_dfs_cannot() {
        // b = 50 per node: the state-space DFS would have 51^9 states; the
        // LP-based B&B is immediate (the relaxation is already integral
        // up to scaling).
        let g = cycle(9);
        let b = vec![50u64; 9];
        let opt = branch_and_bound_lifetimes_checked(&g, &b);
        // C_9, b: optimum = 3b (three residue classes).
        assert_eq!(opt.lifetime, 150);
    }

    #[test]
    fn never_exceeds_the_fractional_optimum() {
        for seed in 0..5 {
            let g = gnp(10, 0.35, seed);
            let b = vec![3u64; 10];
            let frac = lp_optimal_lifetime(&g, &[3.0; 10], 1_000_000)
                .unwrap()
                .lifetime;
            let int = branch_and_bound_lifetime(&g, &b, 1_000_000).unwrap();
            assert!(int.lifetime as f64 <= frac + 1e-6, "seed {seed}");
            // And is at least ⌊frac⌋ − k slack… in fact ≥ frac − #sets, but
            // just check positivity on connected-ish instances.
            assert!(int.lifetime >= 3, "seed {seed}: {}", int.lifetime);
        }
    }

    #[test]
    fn known_closed_forms() {
        assert_eq!(
            branch_and_bound_lifetimes_checked(&complete(5), &[4; 5]).lifetime,
            20
        );
        assert_eq!(
            branch_and_bound_lifetimes_checked(&star(6), &[3; 6]).lifetime,
            6
        );
        // P_3: {1} and {0,2} disjoint → 2b.
        assert_eq!(
            branch_and_bound_lifetimes_checked(&path(3), &[7; 3]).lifetime,
            14
        );
    }

    #[test]
    fn nonuniform_batteries() {
        // Star with rich center: {0} for 9 slots + leaves once.
        let g = star(4);
        let opt = branch_and_bound_lifetimes_checked(&g, &[9, 1, 1, 1]);
        assert_eq!(opt.lifetime, 10);
    }

    #[test]
    fn battery_arity_checked() {
        let g = cycle(4);
        assert!(matches!(
            branch_and_bound_lifetime(&g, &[1; 3], 100),
            Err(ExactError::BatteryArity { .. })
        ));
    }

    #[test]
    fn zero_batteries() {
        let g = cycle(4);
        let opt = branch_and_bound_lifetime(&g, &[0; 4], 1000).unwrap();
        assert_eq!(opt.lifetime, 0);
        assert!(opt.schedule.is_empty());
    }
}
