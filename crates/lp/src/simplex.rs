//! A dense two-phase primal simplex solver.
//!
//! Built from scratch (no external LP dependency) to compute *exact*
//! optima of the maximum-cluster-lifetime LP on small instances — the
//! reference the experiments' approximation ratios are measured against.
//!
//! Scope: dense tableau, Bland's anti-cycling pivot rule, two phases
//! (artificial variables for `≥` / `=` rows). This is `O(iterations · m·n)`
//! per pivot, entirely adequate for the few-hundred-column LPs produced by
//! dominating-set enumeration; it is *not* a general-purpose sparse LP code.

use crate::problem::{Constraint, LinearProgram, Relation};

/// Outcome of a solve.
#[derive(Clone, Debug, PartialEq)]
pub enum LpSolution {
    /// An optimal solution was found.
    Optimal {
        /// Objective value at the optimum.
        objective: f64,
        /// Values of the structural (original) variables.
        x: Vec<f64>,
    },
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
}

impl LpSolution {
    /// The objective value, if optimal.
    pub fn objective(&self) -> Option<f64> {
        match self {
            LpSolution::Optimal { objective, .. } => Some(*objective),
            _ => None,
        }
    }

    /// The variable assignment, if optimal.
    pub fn x(&self) -> Option<&[f64]> {
        match self {
            LpSolution::Optimal { x, .. } => Some(x),
            _ => None,
        }
    }
}

/// Numerical tolerance for pivoting and feasibility tests.
const EPS: f64 = 1e-9;

/// Internal dense tableau.
struct Tableau {
    /// `m × (cols + 1)` rows; last column is the RHS.
    rows: Vec<Vec<f64>>,
    /// Objective row (reduced costs), length `cols + 1`; maximization.
    obj: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Number of structural variables (prefix of the columns).
    n_struct: usize,
    /// Total columns excluding RHS.
    cols: usize,
}

impl Tableau {
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.rows[row][col];
        debug_assert!(piv.abs() > EPS, "pivot element ~0");
        let inv = 1.0 / piv;
        for v in self.rows[row].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.rows[row].clone();
        for (r, row_vec) in self.rows.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = row_vec[col];
            if factor.abs() > EPS {
                for (a, b) in row_vec.iter_mut().zip(&pivot_row) {
                    *a -= factor * b;
                }
            }
        }
        let factor = self.obj[col];
        if factor.abs() > EPS {
            for (a, b) in self.obj.iter_mut().zip(&pivot_row) {
                *a -= factor * b;
            }
        }
        self.basis[row] = col;
    }

    /// One simplex phase with Bland's rule on a maximization objective.
    /// `allowed` limits entering columns. Returns `false` on unboundedness.
    fn run(&mut self, allowed: &dyn Fn(usize) -> bool) -> bool {
        loop {
            // Entering: smallest-index column with positive reduced cost.
            let mut enter = None;
            for c in 0..self.cols {
                if allowed(c) && self.obj[c] > EPS {
                    enter = Some(c);
                    break;
                }
            }
            let Some(col) = enter else { return true };
            // Leaving: min ratio, ties to smallest basis index (Bland).
            let mut leave: Option<(f64, usize, usize)> = None; // (ratio, basis var, row)
            for r in 0..self.rows.len() {
                let a = self.rows[r][col];
                if a > EPS {
                    let ratio = self.rows[r][self.cols] / a;
                    let key = (ratio, self.basis[r], r);
                    match leave {
                        None => leave = Some(key),
                        Some((br, bb, _)) => {
                            if ratio < br - EPS || (ratio < br + EPS && self.basis[r] < bb) {
                                leave = Some(key);
                            }
                        }
                    }
                }
            }
            let Some((_, _, row)) = leave else {
                return false;
            };
            self.pivot(row, col);
        }
    }
}

/// Solves a [`LinearProgram`] (maximization) exactly.
pub fn solve(lp: &LinearProgram) -> LpSolution {
    let n = lp.num_vars();
    let m = lp.constraints().len();

    // Normalize rows to non-negative RHS, then count auxiliary columns.
    struct Row {
        coeffs: Vec<f64>,
        rel: Relation,
        rhs: f64,
    }
    let mut norm: Vec<Row> = Vec::with_capacity(m);
    for c in lp.constraints() {
        let Constraint {
            coeffs,
            relation,
            rhs,
        } = c;
        if *rhs < 0.0 {
            let flipped = match relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
            norm.push(Row {
                coeffs: coeffs.iter().map(|v| -v).collect(),
                rel: flipped,
                rhs: -rhs,
            });
        } else {
            norm.push(Row {
                coeffs: coeffs.clone(),
                rel: *relation,
                rhs: *rhs,
            });
        }
    }

    let n_slack = norm
        .iter()
        .filter(|r| matches!(r.rel, Relation::Le | Relation::Ge))
        .count();
    let n_art = norm
        .iter()
        .filter(|r| matches!(r.rel, Relation::Ge | Relation::Eq))
        .count();
    let cols = n + n_slack + n_art;
    let art_start = n + n_slack;

    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    let mut next_slack = n;
    let mut next_art = art_start;
    for r in &norm {
        let mut row = vec![0.0; cols + 1];
        row[..n].copy_from_slice(&r.coeffs);
        row[cols] = r.rhs;
        match r.rel {
            Relation::Le => {
                row[next_slack] = 1.0;
                basis.push(next_slack);
                next_slack += 1;
            }
            Relation::Ge => {
                row[next_slack] = -1.0; // surplus
                next_slack += 1;
                row[next_art] = 1.0;
                basis.push(next_art);
                next_art += 1;
            }
            Relation::Eq => {
                row[next_art] = 1.0;
                basis.push(next_art);
                next_art += 1;
            }
        }
        rows.push(row);
    }

    let mut t = Tableau {
        rows,
        obj: vec![0.0; cols + 1],
        basis,
        n_struct: n,
        cols,
    };

    // Phase 1: maximize −Σ artificials (i.e. drive them to 0).
    if n_art > 0 {
        for c in art_start..cols {
            t.obj[c] = -1.0;
        }
        // Price out the artificial basics so reduced costs start consistent.
        for r in 0..m {
            if t.basis[r] >= art_start {
                let row = t.rows[r].clone();
                for (a, b) in t.obj.iter_mut().zip(&row) {
                    *a += b;
                }
            }
        }
        let ok = t.run(&|_| true);
        debug_assert!(ok, "phase 1 objective is bounded by construction");
        // Objective value is stored negated in the RHS cell.
        let phase1 = -t.obj[t.cols];
        if phase1.abs() > 1e-7 {
            return LpSolution::Infeasible;
        }
        // Pivot any artificial still in the basis out (degenerate rows).
        for r in 0..m {
            if t.basis[r] >= art_start {
                let mut pivoted = false;
                for c in 0..art_start {
                    if t.rows[r][c].abs() > EPS {
                        t.pivot(r, c);
                        pivoted = true;
                        break;
                    }
                }
                // A row with no structural/slack coefficients is all-zero
                // (redundant constraint); the artificial stays basic at 0,
                // which is harmless as long as it never re-enters.
                let _ = pivoted;
            }
        }
    }

    // Phase 2: the real objective, artificials barred from entering.
    t.obj = vec![0.0; cols + 1];
    for (c, &coef) in lp.objective().iter().enumerate() {
        t.obj[c] = coef;
    }
    // Price out basic variables.
    for r in 0..m {
        let b = t.basis[r];
        let factor = t.obj[b];
        if factor.abs() > EPS {
            let row = t.rows[r].clone();
            for (a, bb) in t.obj.iter_mut().zip(&row) {
                *a -= factor * bb;
            }
        }
    }
    if !t.run(&|c| c < art_start) {
        return LpSolution::Unbounded;
    }

    let mut x = vec![0.0; t.n_struct];
    for r in 0..m {
        if t.basis[r] < t.n_struct {
            x[t.basis[r]] = t.rows[r][t.cols];
        }
    }
    let objective: f64 = lp.objective().iter().zip(&x).map(|(c, v)| c * v).sum();
    LpSolution::Optimal { objective, x }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::LinearProgram;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_two_variable_max() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let mut lp = LinearProgram::maximize(vec![3.0, 5.0]);
        lp.add_le(vec![1.0, 0.0], 4.0);
        lp.add_le(vec![0.0, 2.0], 12.0);
        lp.add_le(vec![3.0, 2.0], 18.0);
        let sol = solve(&lp);
        assert_close(sol.objective().unwrap(), 36.0);
        let x = sol.x().unwrap();
        assert_close(x[0], 2.0);
        assert_close(x[1], 6.0);
    }

    #[test]
    fn unbounded_detection() {
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_le(vec![1.0, -1.0], 1.0);
        assert_eq!(solve(&lp), LpSolution::Unbounded);
    }

    #[test]
    fn infeasible_detection() {
        // x ≤ 1 and x ≥ 2.
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.add_le(vec![1.0], 1.0);
        lp.add_ge(vec![1.0], 2.0);
        assert_eq!(solve(&lp), LpSolution::Infeasible);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x ≤ 3 → obj 5.
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_eq(vec![1.0, 1.0], 5.0);
        lp.add_le(vec![1.0, 0.0], 3.0);
        let sol = solve(&lp);
        assert_close(sol.objective().unwrap(), 5.0);
    }

    #[test]
    fn ge_constraints_need_phase_one() {
        // min x + y s.t. x + 2y ≥ 4, 3x + y ≥ 6  (as max of negative).
        let mut lp = LinearProgram::maximize(vec![-1.0, -1.0]);
        lp.add_ge(vec![1.0, 2.0], 4.0);
        lp.add_ge(vec![3.0, 1.0], 6.0);
        let sol = solve(&lp);
        // Optimum at intersection: x = 8/5, y = 6/5, obj = −14/5.
        assert_close(sol.objective().unwrap(), -14.0 / 5.0);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // x − y ≤ −1 with x, y ≥ 0: max x s.t. y ≥ x + 1, y ≤ 3 → x = 2.
        let mut lp = LinearProgram::maximize(vec![1.0, 0.0]);
        lp.add_le(vec![1.0, -1.0], -1.0);
        lp.add_le(vec![0.0, 1.0], 3.0);
        let sol = solve(&lp);
        assert_close(sol.objective().unwrap(), 2.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_le(vec![1.0, 0.0], 1.0);
        lp.add_le(vec![1.0, 0.0], 1.0);
        lp.add_le(vec![0.0, 1.0], 1.0);
        lp.add_le(vec![1.0, 1.0], 2.0);
        let sol = solve(&lp);
        assert_close(sol.objective().unwrap(), 2.0);
    }

    #[test]
    fn zero_objective() {
        let mut lp = LinearProgram::maximize(vec![0.0]);
        lp.add_le(vec![1.0], 5.0);
        assert_close(solve(&lp).objective().unwrap(), 0.0);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 stated twice; max x ≤ within x,y ≥ 0.
        let mut lp = LinearProgram::maximize(vec![1.0, 0.0]);
        lp.add_eq(vec![1.0, 1.0], 2.0);
        lp.add_eq(vec![1.0, 1.0], 2.0);
        let sol = solve(&lp);
        assert_close(sol.objective().unwrap(), 2.0);
    }

    #[test]
    fn covering_lp_fractional_optimum() {
        // The fractional domatic LP of a triangle with b = 1:
        // three singleton "sets" each covering all nodes → max t1+t2+t3
        // s.t. each node's budget 1 ≥ t_j for its own singleton … here a
        // simpler shape: max Σt s.t. t_i ≤ 1 → 3.
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0, 1.0]);
        for i in 0..3 {
            let mut row = vec![0.0; 3];
            row[i] = 1.0;
            lp.add_le(row, 1.0);
        }
        assert_close(solve(&lp).objective().unwrap(), 3.0);
    }
}
