//! Linear program model: `max c·x` subject to linear constraints and
//! `x ≥ 0`.

/// Relation of a constraint row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// A single constraint row.
#[derive(Clone, Debug, PartialEq)]
pub struct Constraint {
    /// Coefficients, one per variable.
    pub coeffs: Vec<f64>,
    /// Row relation.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A maximization LP over non-negative variables.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearProgram {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// A program maximizing `objective · x` with no constraints yet.
    pub fn maximize(objective: Vec<f64>) -> Self {
        LinearProgram {
            objective,
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// The objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraint rows.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    fn push(&mut self, coeffs: Vec<f64>, relation: Relation, rhs: f64) -> &mut Self {
        assert_eq!(
            coeffs.len(),
            self.objective.len(),
            "constraint arity {} != variable count {}",
            coeffs.len(),
            self.objective.len()
        );
        assert!(rhs.is_finite(), "rhs must be finite");
        assert!(
            coeffs.iter().all(|v| v.is_finite()),
            "coefficients must be finite"
        );
        self.constraints.push(Constraint {
            coeffs,
            relation,
            rhs,
        });
        self
    }

    /// Adds `coeffs · x ≤ rhs`.
    pub fn add_le(&mut self, coeffs: Vec<f64>, rhs: f64) -> &mut Self {
        self.push(coeffs, Relation::Le, rhs)
    }

    /// Adds `coeffs · x ≥ rhs`.
    pub fn add_ge(&mut self, coeffs: Vec<f64>, rhs: f64) -> &mut Self {
        self.push(coeffs, Relation::Ge, rhs)
    }

    /// Adds `coeffs · x = rhs`.
    pub fn add_eq(&mut self, coeffs: Vec<f64>, rhs: f64) -> &mut Self {
        self.push(coeffs, Relation::Eq, rhs)
    }

    /// Checks an assignment against every constraint within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() || x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().zip(x).map(|(a, v)| a * v).sum();
            match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_rows() {
        let mut lp = LinearProgram::maximize(vec![1.0, 2.0]);
        lp.add_le(vec![1.0, 1.0], 3.0).add_ge(vec![1.0, 0.0], 1.0);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.constraints().len(), 2);
        assert_eq!(lp.constraints()[1].relation, Relation::Ge);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        LinearProgram::maximize(vec![1.0]).add_le(vec![1.0, 2.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_rhs_panics() {
        LinearProgram::maximize(vec![1.0]).add_le(vec![1.0], f64::NAN);
    }

    #[test]
    fn feasibility_check() {
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_le(vec![1.0, 1.0], 2.0);
        lp.add_eq(vec![1.0, 0.0], 1.0);
        assert!(lp.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!lp.is_feasible(&[1.0, 1.5], 1e-9));
        assert!(!lp.is_feasible(&[0.5, 0.5], 1e-9)); // violates equality
        assert!(!lp.is_feasible(&[-0.1, 1.1], 1e-9)); // negative variable
        assert!(!lp.is_feasible(&[1.0], 1e-9)); // wrong arity
    }
}
