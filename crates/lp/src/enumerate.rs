//! Enumeration of minimal dominating sets (small graphs only).
//!
//! The maximum-cluster-lifetime LP needs one column per dominating set; it
//! suffices to enumerate *minimal* dominating sets, because any schedule
//! slot using a non-minimal set can shift its time onto a minimal subset
//! without violating any battery budget (budgets only constrain membership
//! time from above).
//!
//! The enumeration branches on the lowest-id uncovered node `v`: every
//! dominating set must contain some `u ∈ N⁺(v)`. This visits every minimal
//! dominating set at least once; results are deduplicated and filtered to
//! the minimal ones.

use domatic_graph::domination::{is_dominating_set, make_minimal};
use domatic_graph::{Graph, NodeId, NodeSet};
use std::collections::BTreeSet;

/// Enumeration failure: the set family exceeded the configured cap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TooManySets {
    /// The cap that was hit.
    pub cap: usize,
}

impl std::fmt::Display for TooManySets {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "more than {} candidate dominating sets; instance too large",
            self.cap
        )
    }
}

impl std::error::Error for TooManySets {}

/// Enumerates all *minimal* dominating sets of `g`, each as a sorted node
/// vector, in lexicographic order. Fails once more than `cap` candidate
/// sets have been generated (guard against exponential blow-up).
pub fn minimal_dominating_sets(g: &Graph, cap: usize) -> Result<Vec<Vec<NodeId>>, TooManySets> {
    let n = g.n();
    if n == 0 {
        // The empty set dominates the empty graph.
        return Ok(vec![Vec::new()]);
    }
    let mut out: BTreeSet<Vec<NodeId>> = BTreeSet::new();
    let mut chosen: Vec<NodeId> = Vec::new();
    let mut cover_count = vec![0u32; n];
    rec(g, &mut chosen, &mut cover_count, 0, &mut out, cap)?;
    Ok(out.into_iter().collect())
}

fn rec(
    g: &Graph,
    chosen: &mut Vec<NodeId>,
    cover_count: &mut Vec<u32>,
    uncovered_from: usize,
    out: &mut BTreeSet<Vec<NodeId>>,
    cap: usize,
) -> Result<(), TooManySets> {
    // Find the first uncovered node at or after the hint.
    let mut v = uncovered_from;
    while v < g.n() && cover_count[v] > 0 {
        v += 1;
    }
    if v == g.n() {
        // Fully covered: minimalize and record.
        let set = NodeSet::from_iter(g.n(), chosen.iter().copied());
        let min = make_minimal(g, &set);
        out.insert(min.to_vec());
        if out.len() > cap {
            return Err(TooManySets { cap });
        }
        return Ok(());
    }
    let v = v as NodeId;
    // Branch: some u ∈ N⁺(v) must be chosen.
    let mut candidates: Vec<NodeId> = vec![v];
    candidates.extend_from_slice(g.neighbors(v));
    for u in candidates {
        if chosen.contains(&u) {
            continue;
        }
        chosen.push(u);
        cover_count[u as usize] += 1;
        for &w in g.neighbors(u) {
            cover_count[w as usize] += 1;
        }
        rec(g, chosen, cover_count, v as usize, out, cap)?;
        let u = chosen.pop().unwrap();
        cover_count[u as usize] -= 1;
        for &w in g.neighbors(u) {
            cover_count[w as usize] -= 1;
        }
    }
    Ok(())
}

/// Exact domatic number by backtracking over minimal dominating sets.
///
/// Finds the largest `k` such that `k` pairwise disjoint dominating sets
/// exist. Exponential; intended for ground-truth on instances with at most
/// a few dozen minimal dominating sets.
pub fn exact_domatic_number(g: &Graph, cap: usize) -> Result<usize, TooManySets> {
    let sets = minimal_dominating_sets(g, cap)?;
    let masks: Vec<NodeSet> = sets
        .iter()
        .map(|s| NodeSet::from_iter(g.n(), s.iter().copied()))
        .collect();
    // Upper bound: min closed degree.
    let ub = (0..g.n() as NodeId)
        .map(|v| g.closed_degree(v))
        .min()
        .unwrap_or(0);
    let mut best = 0usize;
    let mut used = NodeSet::new(g.n());
    fn dfs(
        masks: &[NodeSet],
        used: &mut NodeSet,
        start: usize,
        depth: usize,
        best: &mut usize,
        ub: usize,
    ) {
        if depth > *best {
            *best = depth;
        }
        if *best >= ub {
            return;
        }
        for i in start..masks.len() {
            if masks[i].is_disjoint(used) {
                used.union_with(&masks[i]);
                dfs(masks, used, i + 1, depth + 1, best, ub);
                used.difference_with(&masks[i]);
                if *best >= ub {
                    return;
                }
            }
        }
    }
    if g.n() == 0 {
        return Ok(0);
    }
    dfs(&masks, &mut used, 0, 0, &mut best, ub);
    Ok(best)
}

/// Sanity helper: asserts each enumerated set is a minimal dominating set.
pub fn all_minimal_and_dominating(g: &Graph, sets: &[Vec<NodeId>]) -> bool {
    sets.iter().all(|s| {
        let set = NodeSet::from_iter(g.n(), s.iter().copied());
        if !is_dominating_set(g, &set) {
            return false;
        }
        s.iter().all(|&v| {
            let mut smaller = set.clone();
            smaller.remove(v);
            !is_dominating_set(g, &smaller)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use domatic_graph::generators::fujita::{fujita_bad_instance, fujita_optimal_partition_size};
    use domatic_graph::generators::planted::{cycle_domatic_number, disjoint_cliques};
    use domatic_graph::generators::regular::{complete, cycle, path, star};

    #[test]
    fn star_minimal_sets() {
        // Star S_4: minimal dominating sets are {center} and {all leaves}…
        // plus none other ({center, leaf} is not minimal).
        let g = star(4);
        let sets = minimal_dominating_sets(&g, 1000).unwrap();
        assert!(sets.contains(&vec![0]));
        assert!(sets.contains(&vec![1, 2, 3]));
        assert_eq!(sets.len(), 2);
        assert!(all_minimal_and_dominating(&g, &sets));
    }

    #[test]
    fn complete_graph_minimal_sets_are_singletons() {
        let g = complete(5);
        let sets = minimal_dominating_sets(&g, 1000).unwrap();
        assert_eq!(sets.len(), 5);
        assert!(sets.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn path_p3_minimal_sets() {
        // P_3 (0—1—2): minimal DSs: {1}, {0,2}.
        let g = path(3);
        let sets = minimal_dominating_sets(&g, 1000).unwrap();
        assert_eq!(sets, vec![vec![0, 2], vec![1]]);
        assert!(all_minimal_and_dominating(&g, &sets));
    }

    #[test]
    fn cycle_c5_sets_are_valid_and_minimal() {
        let g = cycle(5);
        let sets = minimal_dominating_sets(&g, 1000).unwrap();
        assert!(all_minimal_and_dominating(&g, &sets));
        // C_5 minimum dominating set has size 2; check one is found.
        assert!(sets.iter().any(|s| s.len() == 2));
    }

    #[test]
    fn cap_triggers_on_dense_instances() {
        let g = complete(12);
        assert_eq!(minimal_dominating_sets(&g, 5), Err(TooManySets { cap: 5 }));
    }

    #[test]
    fn empty_graph_has_empty_dominating_set() {
        let g = Graph::empty(0);
        assert_eq!(
            minimal_dominating_sets(&g, 10).unwrap(),
            vec![Vec::<NodeId>::new()]
        );
        assert_eq!(exact_domatic_number(&g, 10).unwrap(), 0);
    }

    #[test]
    fn exact_domatic_number_of_known_families() {
        assert_eq!(exact_domatic_number(&complete(4), 1000).unwrap(), 4);
        assert_eq!(exact_domatic_number(&star(5), 1000).unwrap(), 2);
        for n in [3usize, 4, 5, 6, 7, 9] {
            assert_eq!(
                exact_domatic_number(&cycle(n), 100_000).unwrap(),
                cycle_domatic_number(n),
                "C_{n}"
            );
        }
        let g = disjoint_cliques(2, 3);
        assert_eq!(exact_domatic_number(&g, 10_000).unwrap(), 3);
    }

    #[test]
    fn exact_domatic_number_of_fujita_family() {
        for m in 1..4 {
            let g = fujita_bad_instance(m);
            assert_eq!(
                exact_domatic_number(&g, 2_000_000).unwrap(),
                fujita_optimal_partition_size(m),
                "m = {m}"
            );
        }
    }

    #[test]
    fn isolated_node_forces_membership() {
        let g = Graph::empty(2);
        let sets = minimal_dominating_sets(&g, 100).unwrap();
        assert_eq!(sets, vec![vec![0, 1]]);
        assert_eq!(exact_domatic_number(&g, 100).unwrap(), 1);
    }

    use domatic_graph::Graph;
}
