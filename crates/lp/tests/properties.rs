//! Property-based tests for the simplex solver and the exact lifetime
//! pipeline.

use domatic_graph::generators::gnp::gnp;
use domatic_graph::Graph;
use domatic_lp::{
    exact_integral_lifetime, lp_optimal_lifetime, minimal_dominating_sets, solve, LinearProgram,
    LpSolution,
};
use proptest::prelude::*;

/// A random feasible, bounded LP: maximize c·x s.t. x_i ≤ u_i and a few
/// random extra ≤-rows with non-negative coefficients (keeps it bounded).
fn arb_bounded_lp() -> impl Strategy<Value = LinearProgram> {
    (1usize..5).prop_flat_map(|nvars| {
        let obj = proptest::collection::vec(0.0f64..10.0, nvars);
        let ubs = proptest::collection::vec(0.1f64..10.0, nvars);
        let extra = proptest::collection::vec(
            (proptest::collection::vec(0.0f64..5.0, nvars), 0.5f64..20.0),
            0..4,
        );
        (obj, ubs, extra).prop_map(move |(obj, ubs, extra)| {
            let mut lp = LinearProgram::maximize(obj);
            for (i, ub) in ubs.iter().enumerate() {
                let mut row = vec![0.0; nvars];
                row[i] = 1.0;
                lp.add_le(row, *ub);
            }
            for (coeffs, rhs) in extra {
                lp.add_le(coeffs, rhs);
            }
            lp
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simplex_solution_is_feasible_and_beats_random_points(
        lp in arb_bounded_lp(),
        samples in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 5), 10),
    ) {
        let sol = solve(&lp);
        let LpSolution::Optimal { objective, x } = sol else {
            return Err(TestCaseError::fail("bounded feasible LP must solve"));
        };
        prop_assert!(lp.is_feasible(&x, 1e-6));
        // Scale random unit-cube samples into the box and check none beats
        // the reported optimum (a weak but effective optimality check).
        for s in samples {
            let candidate: Vec<f64> = (0..lp.num_vars())
                .map(|i| s[i % s.len()] * 10.0)
                .collect();
            if lp.is_feasible(&candidate, 1e-9) {
                let val: f64 = lp
                    .objective()
                    .iter()
                    .zip(&candidate)
                    .map(|(c, v)| c * v)
                    .sum();
                prop_assert!(val <= objective + 1e-6, "{val} > {objective}");
            }
        }
    }

    #[test]
    fn scaling_batteries_scales_the_lp_linearly(seed in 0u64..50, scale in 1u64..5) {
        let g = gnp(9, 0.35, seed);
        let base: Vec<f64> = vec![1.0; 9];
        let scaled: Vec<f64> = vec![scale as f64; 9];
        let l1 = lp_optimal_lifetime(&g, &base, 1_000_000).unwrap().lifetime;
        let ls = lp_optimal_lifetime(&g, &scaled, 1_000_000).unwrap().lifetime;
        prop_assert!((ls - scale as f64 * l1).abs() < 1e-6);
    }

    #[test]
    fn integral_is_at_most_fractional_and_bounds_hold(seed in 0u64..40) {
        let g = gnp(8, 0.4, seed);
        let b = 2u32;
        let frac = lp_optimal_lifetime(&g, &[b as f64; 8], 1_000_000).unwrap().lifetime;
        let int = exact_integral_lifetime(&g, &[b; 8], 1_000_000).unwrap();
        prop_assert!(int as f64 <= frac + 1e-6);
        // Lemma 4.1 with exact arithmetic.
        let delta = g.min_degree().unwrap() as f64;
        prop_assert!(frac <= (b as f64) * (delta + 1.0) + 1e-6);
    }

    #[test]
    fn enumerated_sets_are_minimal_dominating(seed in 0u64..50) {
        let g = gnp(9, 0.3, seed);
        let sets = minimal_dominating_sets(&g, 1_000_000).unwrap();
        prop_assert!(!sets.is_empty());
        prop_assert!(domatic_lp::enumerate::all_minimal_and_dominating(&g, &sets));
        // No duplicates.
        let mut sorted = sets.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sets.len());
    }

    #[test]
    fn lp_witness_schedule_respects_budgets(seed in 0u64..30) {
        let g = gnp(8, 0.4, seed);
        let b: Vec<f64> = (0..8).map(|v| 1.0 + (v % 3) as f64).collect();
        let opt = lp_optimal_lifetime(&g, &b, 1_000_000).unwrap();
        let mut used = [0.0; 8];
        for (set, t) in &opt.schedule {
            for &v in set {
                used[v as usize] += t;
            }
        }
        for v in 0..8 {
            prop_assert!(used[v] <= b[v] + 1e-6);
        }
        let total: f64 = opt.schedule.iter().map(|(_, t)| t).sum();
        prop_assert!((total - opt.lifetime).abs() < 1e-6);
    }
}

#[test]
fn isolated_vertices_force_themselves_into_every_set() {
    let g = Graph::empty(3);
    let sets = minimal_dominating_sets(&g, 100).unwrap();
    assert_eq!(sets, vec![vec![0, 1, 2]]);
}

/// Exact reference for 2-variable LPs with only ≤ rows: the optimum lies
/// at a vertex — an intersection of two constraint lines (including the
/// axes x = 0, y = 0). Enumerate all pairs, keep feasible points, maximize.
fn brute_force_2var(lp: &LinearProgram) -> Option<f64> {
    // Gather all lines as (a, b, c): a·x + b·y = c.
    let mut lines: Vec<(f64, f64, f64)> = vec![(1.0, 0.0, 0.0), (0.0, 1.0, 0.0)];
    for con in lp.constraints() {
        lines.push((con.coeffs[0], con.coeffs[1], con.rhs));
    }
    let mut best: Option<f64> = None;
    for i in 0..lines.len() {
        for j in i + 1..lines.len() {
            let (a1, b1, c1) = lines[i];
            let (a2, b2, c2) = lines[j];
            let det = a1 * b2 - a2 * b1;
            if det.abs() < 1e-9 {
                continue;
            }
            let x = (c1 * b2 - c2 * b1) / det;
            let y = (a1 * c2 - a2 * c1) / det;
            if lp.is_feasible(&[x, y], 1e-7) {
                let val = lp.objective()[0] * x + lp.objective()[1] * y;
                best = Some(best.map_or(val, |b: f64| b.max(val)));
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn simplex_matches_vertex_enumeration_in_2d(
        obj in proptest::collection::vec(0.1f64..5.0, 2),
        rows in proptest::collection::vec(
            (0.0f64..4.0, 0.0f64..4.0, 0.5f64..10.0), 1..6),
        ub in 1.0f64..8.0,
    ) {
        let mut lp = LinearProgram::maximize(obj);
        // Box constraints keep it bounded even if all rows are slack.
        lp.add_le(vec![1.0, 0.0], ub);
        lp.add_le(vec![0.0, 1.0], ub);
        for (a, b, c) in rows {
            lp.add_le(vec![a, b], c);
        }
        let simplex_val = solve(&lp).objective().expect("feasible bounded LP");
        let brute = brute_force_2var(&lp).expect("origin is feasible");
        prop_assert!(
            (simplex_val - brute).abs() < 1e-5,
            "simplex {simplex_val} vs brute {brute}"
        );
    }
}
