//! The wire protocol: JSON-lines requests in, JSON-lines responses out.
//!
//! A request is one JSON object per line:
//!
//! ```json
//! {"id":1,"op":"solve","graph":"ring","alg":"greedy","b":3,"seed":0}
//! ```
//!
//! | field         | ops              | default   | meaning |
//! |---------------|------------------|-----------|---------|
//! | `id`          | all              | required  | echoed on the response |
//! | `op`          | all              | required  | `solve`, `bounds`, `adapt`, `mutate`, `stats`, `metrics`, `profile`, `ping`, `shutdown` |
//! | `graph`       | solve/bounds/adapt/mutate | required | a graph name preloaded at server start |
//! | `alg`         | solve/adapt      | `uniform` | a [`solver_registry`] name |
//! | `solver`      | solve/adapt      | —         | alias for `alg`; if both appear they must agree |
//! | `b`           | solve/bounds/adapt | 3       | uniform battery level |
//! | `k`           | solve/bounds/adapt | 1       | domination tolerance |
//! | `seed`        | solve/adapt      | 0         | base seed |
//! | `trials`      | solve/adapt      | 8         | best-of-R restarts |
//! | `c`           | solve/adapt      | 3.0       | the paper's range constant |
//! | `hops`        | solve/bounds     | 1         | coverage radius (d-hop domination) |
//! | `deadline_ms` | solve/bounds/adapt | none    | per-request deadline |
//! | `budget_ms`   | solve/adapt      | none      | anytime-solver wall-clock budget (`SolverConfig::budget`) |
//! | `failures`    | adapt            | `crash`   | failure model list |
//! | `p`           | adapt            | 0.02      | per-slot failure probability |
//! | `slots`       | adapt            | 10000     | simulated slot budget |
//! | `action`      | mutate           | required  | `add_node`, `remove_node`, `add_edge`, `remove_edge`, `set_battery` |
//! | `node`        | mutate           | —         | node id for `remove_node` / `set_battery` |
//! | `value`       | mutate           | —         | battery level for `set_battery` |
//! | `u`, `v`      | mutate           | —         | edge endpoints for `add_edge` / `remove_edge` |
//! | `neighbors`   | mutate           | `[]`      | neighbor list for `add_node` |
//!
//! Responses are `{"id":N,"ok":true,"result":{…}}` or
//! `{"id":N,"ok":false,"error":{"kind":"…","message":"…"}}`, with
//! `error.kind` drawn from [`DomaticError::kind`]. Response objects are
//! hand-rendered with a fixed field order, so equal requests produce
//! byte-identical lines — the cache stores and replays exactly these
//! bytes.
//!
//! [`solver_registry`]: domatic_core::solver::solver_registry

use domatic_core::error::DomaticError;
use domatic_core::incremental::GraphDelta;
use domatic_core::solver::{Budget, SolverConfig};
use domatic_telemetry::json::{self, Json};

/// What a request asks the server to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Run a registered solver and return the validated schedule.
    Solve,
    /// Report the analytic lifetime upper bounds for an instance.
    Bounds,
    /// Run the adaptive-vs-static comparison under a failure plan.
    Adapt,
    /// Apply one churn delta to a named graph, producing a new version.
    Mutate,
    /// Report the server's counters (requests, cache, batching).
    Stats,
    /// Render the telemetry registry in Prometheus text exposition
    /// format (returned as one JSON string field).
    Metrics,
    /// Return the completed-request trace ring and span aggregates.
    Profile,
    /// Liveness probe.
    Ping,
    /// Begin graceful drain: finish in-flight work, admit nothing new.
    Shutdown,
}

impl Op {
    fn parse(s: &str) -> Option<Op> {
        Some(match s {
            "solve" => Op::Solve,
            "bounds" => Op::Bounds,
            "adapt" => Op::Adapt,
            "mutate" => Op::Mutate,
            "stats" => Op::Stats,
            "metrics" => Op::Metrics,
            "profile" => Op::Profile,
            "ping" => Op::Ping,
            "shutdown" => Op::Shutdown,
            _ => return None,
        })
    }
}

/// A parsed, defaulted request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim.
    pub id: u64,
    /// The operation.
    pub op: Op,
    /// Named graph the request runs against (solve/bounds/adapt).
    pub graph: String,
    /// Solver registry name.
    pub alg: String,
    /// Uniform battery level.
    pub b: u64,
    /// Solver configuration (seed/trials/k/c/hops).
    pub cfg: SolverConfig,
    /// Optional per-request deadline.
    pub deadline_ms: Option<u64>,
    /// Failure model list for `adapt`.
    pub failures: String,
    /// Per-slot failure probability for `adapt`.
    pub p: f64,
    /// Slot budget for `adapt`.
    pub slots: u64,
    /// The churn delta for `mutate` (always `Some` when `op` is
    /// [`Op::Mutate`], `None` otherwise).
    pub delta: Option<GraphDelta>,
}

fn bad(message: impl Into<String>) -> DomaticError {
    DomaticError::BadRequest {
        message: message.into(),
    }
}

fn field_u64(obj: &Json, key: &str, default: u64) -> Result<u64, DomaticError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_int()
            .and_then(|i| u64::try_from(i).ok())
            .ok_or_else(|| bad(format!("field '{key}' must be a non-negative integer"))),
    }
}

fn field_f64(obj: &Json, key: &str, default: f64) -> Result<f64, DomaticError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| bad(format!("field '{key}' must be a number"))),
    }
}

fn field_str(obj: &Json, key: &str, default: &str) -> Result<String, DomaticError> {
    match obj.get(key) {
        None => Ok(default.to_string()),
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| bad(format!("field '{key}' must be a string"))),
    }
}

/// A required node-id field for `mutate` actions: present, integral,
/// and within `u32` range (the server validates against the actual
/// graph size).
fn field_node(obj: &Json, key: &str) -> Result<u32, DomaticError> {
    obj.get(key)
        .ok_or_else(|| bad(format!("field '{key}' is required for this action")))?
        .as_int()
        .and_then(|i| u32::try_from(i).ok())
        .ok_or_else(|| bad(format!("field '{key}' must be a non-negative integer")))
}

/// Parses the `mutate` delta from `action` plus its per-action fields.
fn parse_delta(obj: &Json) -> Result<GraphDelta, DomaticError> {
    let action = field_str(obj, "action", "")?;
    match action.as_str() {
        "add_node" => {
            let neighbors = match obj.get("neighbors") {
                None => Vec::new(),
                Some(Json::Arr(items)) => items
                    .iter()
                    .map(|v| {
                        v.as_int()
                            .and_then(|i| u32::try_from(i).ok())
                            .ok_or_else(|| bad("field 'neighbors' must hold non-negative integers"))
                    })
                    .collect::<Result<Vec<u32>, DomaticError>>()?,
                Some(_) => return Err(bad("field 'neighbors' must be an array")),
            };
            Ok(GraphDelta::AddNode { neighbors })
        }
        "remove_node" => Ok(GraphDelta::RemoveNode {
            node: field_node(obj, "node")?,
        }),
        "add_edge" => Ok(GraphDelta::AddEdge {
            u: field_node(obj, "u")?,
            v: field_node(obj, "v")?,
        }),
        "remove_edge" => Ok(GraphDelta::RemoveEdge {
            u: field_node(obj, "u")?,
            v: field_node(obj, "v")?,
        }),
        "set_battery" => Ok(GraphDelta::SetBattery {
            node: field_node(obj, "node")?,
            value: obj
                .get("value")
                .ok_or_else(|| bad("field 'value' is required for this action"))?
                .as_int()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| bad("field 'value' must be a non-negative integer"))?,
        }),
        "" => Err(bad("field 'action' is required for op 'mutate'")),
        other => Err(bad(format!(
            "unknown action '{other}' (add_node|remove_node|add_edge|remove_edge|set_battery)"
        ))),
    }
}

/// Parses one request line. On failure the error is paired with the best
/// `id` that could be recovered from the line (0 if none), so the error
/// response still correlates where possible.
pub fn parse_request(line: &str) -> Result<Request, (u64, DomaticError)> {
    let obj = json::parse(line).map_err(|e| (0, bad(format!("invalid JSON: {e}"))))?;
    if !matches!(obj, Json::Obj(_)) {
        return Err((0, bad("request must be a JSON object")));
    }
    let id = field_u64(&obj, "id", 0).map_err(|e| (0, e))?;
    let fail = |e: DomaticError| (id, e);
    let op_name = field_str(&obj, "op", "").map_err(fail)?;
    let op = Op::parse(&op_name).ok_or_else(|| {
        fail(bad(format!(
            "unknown op '{op_name}' (solve|bounds|adapt|mutate|stats|metrics|profile|ping|shutdown)"
        )))
    })?;
    let graph = field_str(&obj, "graph", "").map_err(fail)?;
    if graph.is_empty() && matches!(op, Op::Solve | Op::Bounds | Op::Adapt | Op::Mutate) {
        return Err(fail(bad("field 'graph' is required for this op")));
    }
    let delta = if op == Op::Mutate {
        Some(parse_delta(&obj).map_err(fail)?)
    } else {
        None
    };
    let mut cfg = SolverConfig::new()
        .seed(field_u64(&obj, "seed", 0).map_err(fail)?)
        .trials(field_u64(&obj, "trials", 8).map_err(fail)?)
        .k(field_u64(&obj, "k", 1).map_err(fail)? as usize)
        .c(field_f64(&obj, "c", 3.0).map_err(fail)?)
        .hops(field_u64(&obj, "hops", 1).map_err(fail)? as usize);
    // `budget_ms` caps the anytime solvers' refinement wall-clock; it
    // lives in the `SolverConfig` (and therefore in `config_hash`), so
    // the solve cache keys per-budget. Same strictness as `deadline_ms`:
    // present means a non-negative integer, never a silent default.
    if let Some(v) = obj.get("budget_ms") {
        let ms = v
            .as_int()
            .and_then(|i| u64::try_from(i).ok())
            .ok_or_else(|| fail(bad("field 'budget_ms' must be a non-negative integer")))?;
        cfg = cfg.budget(Budget::new().deadline_ms(ms));
    }
    // Parsed once: an absent field means "no deadline", while a present
    // field must be a non-negative integer — a null/float/string never
    // silently defaults.
    let deadline_ms = match obj.get("deadline_ms") {
        None => None,
        Some(v) => Some(
            v.as_int()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| fail(bad("field 'deadline_ms' must be a non-negative integer")))?,
        ),
    };
    // `solver` is the preferred spelling going forward; `alg` stays for
    // compatibility. A request naming both with different values is
    // ambiguous and rejected rather than silently resolved.
    let alg = field_str(&obj, "alg", "uniform").map_err(fail)?;
    let alg = match obj.get("solver") {
        None => alg,
        Some(v) => {
            let solver = v
                .as_str()
                .ok_or_else(|| fail(bad("field 'solver' must be a string")))?;
            if obj.get("alg").is_some() && solver != alg {
                return Err(fail(bad(format!(
                    "fields 'alg' ('{alg}') and 'solver' ('{solver}') disagree"
                ))));
            }
            solver.to_string()
        }
    };
    Ok(Request {
        id,
        op,
        graph,
        alg,
        b: field_u64(&obj, "b", 3).map_err(fail)?,
        cfg,
        deadline_ms,
        failures: field_str(&obj, "failures", "crash").map_err(fail)?,
        p: field_f64(&obj, "p", 0.02).map_err(fail)?,
        slots: field_u64(&obj, "slots", 10_000).map_err(fail)?,
        delta,
    })
}

/// Renders a success response line (no trailing newline). `result` must
/// already be rendered JSON — for cacheable ops it comes verbatim from
/// the cache, which is what makes cached and uncached responses
/// byte-identical.
pub fn ok_line(id: u64, result: &str) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"result\":{result}}}")
}

/// Renders a typed error response line (no trailing newline). An
/// `overloaded` error additionally carries `error.shed_tier` (`"miss"`
/// or `"join"`) so clients can tell ordinary backpressure (retry soon)
/// from severe waiter pressure (back off hard).
pub fn err_line(id: u64, err: &DomaticError) -> String {
    let message = Json::Str(err.to_string()).render();
    if let DomaticError::Overloaded { tier, .. } = err {
        return format!(
            "{{\"id\":{id},\"ok\":false,\"error\":{{\"kind\":\"overloaded\",\"message\":{message},\"shed_tier\":\"{tier}\"}}}}",
        );
    }
    format!(
        "{{\"id\":{id},\"ok\":false,\"error\":{{\"kind\":\"{}\",\"message\":{message}}}}}",
        err.kind()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_solve_request_with_defaults() {
        let r = parse_request(r#"{"id":7,"op":"solve","graph":"ring"}"#).unwrap();
        assert_eq!(r.id, 7);
        assert_eq!(r.op, Op::Solve);
        assert_eq!(r.graph, "ring");
        assert_eq!(r.alg, "uniform");
        assert_eq!(r.b, 3);
        assert_eq!(r.cfg, SolverConfig::new());
        assert_eq!(r.deadline_ms, None);
    }

    #[test]
    fn parses_every_field() {
        let r = parse_request(
            r#"{"id":1,"op":"adapt","graph":"g","alg":"ft","b":5,"k":2,"seed":9,"trials":3,"c":4.5,"hops":2,"deadline_ms":250,"failures":"all","p":0.1,"slots":500}"#,
        )
        .unwrap();
        assert_eq!(r.op, Op::Adapt);
        assert_eq!(r.alg, "ft");
        assert_eq!(r.b, 5);
        assert_eq!(
            r.cfg,
            SolverConfig::new().seed(9).trials(3).k(2).c(4.5).hops(2)
        );
        assert_eq!(r.deadline_ms, Some(250));
        assert_eq!((r.failures.as_str(), r.slots), ("all", 500));
    }

    #[test]
    fn hops_defaults_to_one_and_feeds_the_cache_key() {
        let plain = parse_request(r#"{"id":1,"op":"solve","graph":"g"}"#).unwrap();
        assert_eq!(plain.cfg.hops, 1);
        let wide = parse_request(r#"{"id":1,"op":"solve","graph":"g","hops":2}"#).unwrap();
        assert_eq!(wide.cfg.hops, 2);
        // config_hash covers hops, so cached 1-hop solves can never be
        // replayed for a d-hop request.
        use domatic_core::hash::config_hash;
        assert_ne!(config_hash(&plain.cfg), config_hash(&wide.cfg));
    }

    #[test]
    fn rejects_garbage_with_recovered_id() {
        let (id, e) = parse_request(r#"{"id":42,"op":"nope"}"#).unwrap_err();
        assert_eq!(id, 42);
        assert_eq!(e.kind(), "bad_request");

        let (id, e) = parse_request("not json").unwrap_err();
        assert_eq!(id, 0);
        assert_eq!(e.kind(), "bad_request");

        let (_, e) = parse_request(r#"{"id":1,"op":"solve"}"#).unwrap_err();
        assert!(e.to_string().contains("graph"), "{e}");
    }

    #[test]
    fn deadline_ms_must_be_a_nonnegative_integer_when_present() {
        // Absent → no deadline.
        let r = parse_request(r#"{"id":1,"op":"solve","graph":"g"}"#).unwrap();
        assert_eq!(r.deadline_ms, None);
        // Present and integral → parsed (including explicit 0).
        let r = parse_request(r#"{"id":1,"op":"solve","graph":"g","deadline_ms":0}"#).unwrap();
        assert_eq!(r.deadline_ms, Some(0));
        // null / float / string / negative are rejected, never defaulted.
        for bad_value in ["null", "1.5", "\"100\"", "-3", "true"] {
            let line = format!(
                "{{\"id\":2,\"op\":\"solve\",\"graph\":\"g\",\"deadline_ms\":{bad_value}}}"
            );
            let (id, e) = parse_request(&line).unwrap_err();
            assert_eq!(id, 2, "id still recovered for {bad_value}");
            assert!(
                e.to_string().contains("deadline_ms"),
                "error names the field for {bad_value}: {e}"
            );
        }
    }

    #[test]
    fn solver_field_is_an_alias_for_alg() {
        let r = parse_request(r#"{"id":1,"op":"solve","graph":"g","solver":"tabu"}"#).unwrap();
        assert_eq!(r.alg, "tabu");
        // Agreeing duplicates are fine.
        let r =
            parse_request(r#"{"id":1,"op":"solve","graph":"g","alg":"sa","solver":"sa"}"#).unwrap();
        assert_eq!(r.alg, "sa");
        // Disagreeing duplicates are ambiguous and rejected.
        let (id, e) =
            parse_request(r#"{"id":3,"op":"solve","graph":"g","alg":"greedy","solver":"tabu"}"#)
                .unwrap_err();
        assert_eq!(id, 3);
        assert_eq!(e.kind(), "bad_request");
        assert!(e.to_string().contains("disagree"), "{e}");
        // Non-string solver is a type error, not a default.
        let (_, e) = parse_request(r#"{"id":4,"op":"solve","graph":"g","solver":7}"#).unwrap_err();
        assert!(e.to_string().contains("solver"), "{e}");
    }

    #[test]
    fn budget_ms_lands_in_the_solver_config_and_the_cache_key() {
        let plain = parse_request(r#"{"id":1,"op":"solve","graph":"g"}"#).unwrap();
        assert_eq!(plain.cfg.budget.deadline_ms, None);
        let bounded =
            parse_request(r#"{"id":1,"op":"solve","graph":"g","budget_ms":150}"#).unwrap();
        assert_eq!(bounded.cfg.budget.deadline_ms, Some(150));
        // The budget is part of config_hash, so a cached unbounded solve
        // can never answer a budgeted request (or vice versa).
        use domatic_core::hash::config_hash;
        assert_ne!(config_hash(&plain.cfg), config_hash(&bounded.cfg));
        // Explicit zero is distinct from absent.
        let zero = parse_request(r#"{"id":1,"op":"solve","graph":"g","budget_ms":0}"#).unwrap();
        assert_eq!(zero.cfg.budget.deadline_ms, Some(0));
        assert_ne!(config_hash(&plain.cfg), config_hash(&zero.cfg));
        // Malformed values are rejected, never defaulted.
        for bad_value in ["null", "1.5", "\"100\"", "-3"] {
            let line =
                format!("{{\"id\":2,\"op\":\"solve\",\"graph\":\"g\",\"budget_ms\":{bad_value}}}");
            let (_, e) = parse_request(&line).unwrap_err();
            assert!(e.to_string().contains("budget_ms"), "{bad_value}: {e}");
        }
    }

    #[test]
    fn parses_every_mutate_action() {
        let cases = [
            (
                r#"{"id":1,"op":"mutate","graph":"g","action":"add_node","neighbors":[0,2,5]}"#,
                GraphDelta::AddNode {
                    neighbors: vec![0, 2, 5],
                },
            ),
            (
                r#"{"id":2,"op":"mutate","graph":"g","action":"remove_node","node":4}"#,
                GraphDelta::RemoveNode { node: 4 },
            ),
            (
                r#"{"id":3,"op":"mutate","graph":"g","action":"add_edge","u":1,"v":7}"#,
                GraphDelta::AddEdge { u: 1, v: 7 },
            ),
            (
                r#"{"id":4,"op":"mutate","graph":"g","action":"remove_edge","u":0,"v":3}"#,
                GraphDelta::RemoveEdge { u: 0, v: 3 },
            ),
            (
                r#"{"id":5,"op":"mutate","graph":"g","action":"set_battery","node":2,"value":9}"#,
                GraphDelta::SetBattery { node: 2, value: 9 },
            ),
        ];
        for (line, expected) in cases {
            let r = parse_request(line).unwrap();
            assert_eq!(r.op, Op::Mutate);
            assert_eq!(r.graph, "g");
            assert_eq!(r.delta.as_ref(), Some(&expected), "{line}");
        }
        // An isolated add_node defaults to an empty neighbor list.
        let r = parse_request(r#"{"id":6,"op":"mutate","graph":"g","action":"add_node"}"#).unwrap();
        assert_eq!(r.delta, Some(GraphDelta::AddNode { neighbors: vec![] }));
    }

    #[test]
    fn rejects_malformed_mutate_requests_with_recovered_id() {
        let rejected = [
            // Missing graph / action / required per-action fields.
            r#"{"id":9,"op":"mutate","action":"remove_node","node":1}"#,
            r#"{"id":9,"op":"mutate","graph":"g"}"#,
            r#"{"id":9,"op":"mutate","graph":"g","action":"warp"}"#,
            r#"{"id":9,"op":"mutate","graph":"g","action":"remove_node"}"#,
            r#"{"id":9,"op":"mutate","graph":"g","action":"add_edge","u":1}"#,
            r#"{"id":9,"op":"mutate","graph":"g","action":"set_battery","node":1}"#,
            // Type errors are rejected, never defaulted.
            r#"{"id":9,"op":"mutate","graph":"g","action":"remove_node","node":-1}"#,
            r#"{"id":9,"op":"mutate","graph":"g","action":"remove_node","node":1.5}"#,
            r#"{"id":9,"op":"mutate","graph":"g","action":"add_node","neighbors":3}"#,
            r#"{"id":9,"op":"mutate","graph":"g","action":"add_node","neighbors":["a"]}"#,
        ];
        for line in rejected {
            let (id, e) = parse_request(line).unwrap_err();
            assert_eq!(id, 9, "{line}");
            assert_eq!(e.kind(), "bad_request", "{line}: {e}");
        }
    }

    #[test]
    fn metrics_and_profile_ops_parse_without_a_graph() {
        let r = parse_request(r#"{"id":5,"op":"metrics"}"#).unwrap();
        assert_eq!(r.op, Op::Metrics);
        let r = parse_request(r#"{"id":6,"op":"profile"}"#).unwrap();
        assert_eq!(r.op, Op::Profile);
    }

    #[test]
    fn err_line_escapes_hostile_messages_byte_exactly() {
        // Control chars, quotes, backslashes, and non-ASCII in error
        // messages must stay valid JSON — these exact bytes can be
        // cached and replayed.
        let cases = [
            ("quote\"inside", "quote\\\"inside"),
            ("back\\slash", "back\\\\slash"),
            ("tab\there", "tab\\there"),
            ("new\nline", "new\\nline"),
            ("bell\u{7}char", "bell\\u0007char"),
            ("snow\u{2603}man", "snow\u{2603}man"),
        ];
        for (raw, escaped) in cases {
            let err = DomaticError::BadRequest {
                message: raw.to_string(),
            };
            let line = err_line(9, &err);
            let expected = format!(
                "{{\"id\":9,\"ok\":false,\"error\":{{\"kind\":\"bad_request\",\"message\":\"bad request: {escaped}\"}}}}"
            );
            assert_eq!(line, expected, "byte-exact rendering for {raw:?}");
            let parsed = json::parse(&line).expect("line parses back");
            let msg = parsed
                .get("error")
                .and_then(|e| e.get("message"))
                .and_then(|m| m.as_str())
                .unwrap();
            assert_eq!(
                msg,
                format!("bad request: {raw}"),
                "round-trips for {raw:?}"
            );
        }
    }

    #[test]
    fn json_str_render_escapes_every_class_of_hostile_input() {
        let hostile = "a\"b\\c\nd\re\tf\u{1}g\u{1F}h\u{80}i\u{2028}j";
        let rendered = Json::Str(hostile.to_string()).render();
        // Valid JSON that round-trips to the original.
        assert_eq!(
            json::parse(&rendered).unwrap().as_str(),
            Some(hostile),
            "{rendered}"
        );
        // No raw control bytes survive in the rendered form.
        assert!(
            rendered.bytes().all(|b| b >= 0x20),
            "control bytes leaked: {rendered:?}"
        );
    }

    #[test]
    fn response_lines_are_valid_json_with_fixed_shape() {
        let ok = ok_line(3, "{\"x\":1}");
        assert_eq!(ok, "{\"id\":3,\"ok\":true,\"result\":{\"x\":1}}");
        json::parse(&ok).unwrap();

        let err = err_line(4, &DomaticError::ShuttingDown);
        json::parse(&err).unwrap();
        assert!(err.contains("\"kind\":\"shutting_down\""), "{err}");
    }

    #[test]
    fn overloaded_errors_carry_their_shed_tier() {
        for tier in ["miss", "join"] {
            let line = err_line(11, &DomaticError::Overloaded { capacity: 64, tier });
            let v = json::parse(&line).unwrap();
            let error = v.get("error").unwrap();
            assert_eq!(
                error.get("kind").and_then(|k| k.as_str()),
                Some("overloaded")
            );
            assert_eq!(
                error.get("shed_tier").and_then(|t| t.as_str()),
                Some(tier),
                "{line}"
            );
        }
        // Only overloaded responses grow the field: other kinds keep the
        // two-field error shape.
        assert!(!err_line(4, &DomaticError::ShuttingDown).contains("shed_tier"));
    }
}
