//! # domatic-server
//!
//! A long-running JSON-lines solve service over the [`Solver`] registry:
//! the serving layer the ROADMAP's "heavy traffic" goal needs, where a
//! one-shot CLI invocation would re-pay graph loading and solver startup
//! on every query.
//!
//! One request is one JSON object on one line; one response is one JSON
//! object on one line, matched to its request by `id`. Requests run
//! against *named graphs preloaded at server start*, so steady-state
//! traffic never parses a topology. Transports: stdin/stdout
//! ([`Server::serve_stdio`]) and TCP ([`Server::serve_tcp`]).
//!
//! Three mechanisms amortize repeated work:
//!
//! - **Admission control** — at most `capacity` jobs in flight; requests
//!   beyond that are rejected *at admission* with a typed `overloaded`
//!   error instead of growing an unbounded queue (overload can never
//!   OOM the server).
//! - **Micro-batching** — requests that canonicalize to the same solve
//!   key (graph hash + op + solver + config) within `batch_window`
//!   coalesce into one underlying solve whose result fans out to every
//!   waiter.
//! - **Content-addressed caching** — completed results enter a
//!   byte-bounded LRU keyed by the same canonical key; a hit is served
//!   from memory, byte-identical to the solve that filled it.
//!
//! Execution rides the vendored-rayon global pool: each admitted job is
//! `rayon::spawn`ed onto a pool worker, and the solvers' own parallel
//! iterators nest inside it (the pool's helping discipline makes that
//! safe at any pool size). Every solver is deterministic at a fixed
//! seed, so responses are byte-identical regardless of thread count,
//! batching, or cache state — the serve integration tests pin this.
//!
//! The TCP transport is evented and sharded: an acceptor thread hands
//! connections to `shards` epoll readiness loops (the `conn` and
//! `event_loop` modules, built on the vendored `mio` shim), each owning
//! its connections end to end. Requests pipelined on one connection are
//! answered in receipt order, and overload sheds in tiers (cache-miss
//! traffic first, batch joins under severe pressure, cache hits never).
//!
//! [`Solver`]: domatic_core::solver::Solver

pub mod cache;
mod conn;
mod event_loop;
pub mod protocol;
pub mod server;
pub mod trace;

pub use cache::SolveCache;
pub use protocol::{parse_request, Op, Request};
pub use server::{Server, ServerConfig, ServerStatsSnapshot};
pub use trace::{ReqTrace, TraceRecord, Tracer};
