//! Request lifecycle tracing: per-request trace ids, structured
//! JSON-lines events, a bounded ring of completed-request records, and a
//! slow-request dump.
//!
//! Every solve-shaped request gets a trace id at admission and emits a
//! fixed event vocabulary as it moves through the server:
//! `received`, then `admitted` or `shed`, then `batch_joined` /
//! `cache_hit` / `cache_miss`, `solve_start` / `solve_end`, `rendered`,
//! and finally `written` (which carries the phase durations:
//! queue-wait, solve, render, total). Timestamps are microseconds on
//! the tracer's own monotonic clock, so events within one trace are
//! non-decreasing by construction.
//!
//! **Invariant — tracing never changes response bytes.** Trace ids and
//! events exist only in access-log lines and the in-memory ring; they
//! are never rendered into a response. The serve test suite and the CI
//! `obs-smoke` job both pin response digests with tracing on vs off.
//!
//! The ring buffer is always on (bounded, a few hundred records) and
//! feeds the `profile` op; the JSON-lines sink is attached only when
//! `--access-log` is given, and the slow-request dump only when
//! `--slow-ms` is set.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn json_str(s: &str) -> String {
    domatic_telemetry::json::Json::Str(s.to_string()).render()
}

/// One completed request, as kept in the tracer's ring buffer and
/// returned by the `profile` op.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// The trace id (monotone per server).
    pub trace: u64,
    /// The client's request id.
    pub id: u64,
    /// Op name (`solve` / `bounds` / `adapt`).
    pub op: &'static str,
    /// Graph the request ran against.
    pub graph: String,
    /// Solver name.
    pub alg: String,
    /// How the request ended: `ok`, `error`, `shed`, or `deadline`.
    pub outcome: &'static str,
    /// Microseconds since server start when the request was received.
    pub t0_us: u64,
    /// Received → written, µs.
    pub total_us: u64,
    /// Time not accounted to solve or render (admission, batch window,
    /// fan-out), µs.
    pub queue_us: u64,
    /// Solver time of the batch that served this request, µs.
    pub solve_us: u64,
    /// Payload rendering time of that batch, µs.
    pub render_us: u64,
}

impl TraceRecord {
    /// Renders the record as a JSON object with fixed (alphabetical)
    /// field order.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"alg\":{},\"graph\":{},\"id\":{},\"op\":\"{}\",\"outcome\":\"{}\",\"queue_us\":{},\"render_us\":{},\"solve_us\":{},\"t0_us\":{},\"total_us\":{},\"trace\":{}}}",
            json_str(&self.alg),
            json_str(&self.graph),
            self.id,
            self.op,
            self.outcome,
            self.queue_us,
            self.render_us,
            self.solve_us,
            self.t0_us,
            self.total_us,
            self.trace,
        )
    }
}

/// Per-request trace state, shared between the transport thread and the
/// batch job via `Arc` (a batch waiter carries its own trace).
pub struct ReqTrace {
    /// The trace id.
    pub trace: u64,
    /// The client's request id.
    pub id: u64,
    /// Op name.
    pub op: &'static str,
    /// Graph name.
    pub graph: String,
    /// Solver name.
    pub alg: String,
    t0_us: u64,
    events: Mutex<Vec<(&'static str, u64)>>,
}

/// The server's tracing spine: hands out trace ids, timestamps events,
/// writes access-log lines, and keeps the completed-request ring.
pub struct Tracer {
    start: Instant,
    next: AtomicU64,
    log: Mutex<Option<Box<dyn Write + Send>>>,
    ring: Mutex<VecDeque<TraceRecord>>,
    ring_cap: usize,
    slow_us: Option<u64>,
}

impl Tracer {
    /// A tracer keeping at most `ring_cap` completed records, dumping
    /// full lifecycles of requests slower than `slow_us` (if set).
    pub fn new(ring_cap: usize, slow_us: Option<u64>) -> Self {
        Tracer {
            start: Instant::now(),
            next: AtomicU64::new(0),
            log: Mutex::new(None),
            ring: Mutex::new(VecDeque::with_capacity(ring_cap.min(1024))),
            ring_cap,
            slow_us,
        }
    }

    /// Attaches the access-log sink; every subsequent event is written
    /// to it as one JSON line.
    pub fn set_log(&self, w: Box<dyn Write + Send>) {
        *lock(&self.log) = Some(w);
    }

    /// Microseconds since the tracer (server) started.
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn log_line(&self, line: &str) {
        let mut guard = lock(&self.log);
        if let Some(w) = guard.as_mut() {
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
    }

    /// Starts a trace for one request and emits its `received` event.
    pub fn begin(&self, id: u64, op: &'static str, graph: &str, alg: &str) -> Arc<ReqTrace> {
        let trace = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        let t0_us = self.now_us();
        let rt = Arc::new(ReqTrace {
            trace,
            id,
            op,
            graph: graph.to_string(),
            alg: alg.to_string(),
            t0_us,
            events: Mutex::new(vec![("received", t0_us)]),
        });
        if lock(&self.log).is_some() {
            self.log_line(&format!(
                "{{\"alg\":{},\"event\":\"received\",\"graph\":{},\"id\":{},\"op\":\"{}\",\"t_us\":{},\"trace\":{}}}",
                json_str(&rt.alg),
                json_str(&rt.graph),
                rt.id,
                rt.op,
                t0_us,
                trace,
            ));
        }
        rt
    }

    /// Records a named lifecycle event on `rt`.
    pub fn event(&self, rt: &ReqTrace, name: &'static str) {
        let t_us = self.now_us();
        lock(&rt.events).push((name, t_us));
        if lock(&self.log).is_some() {
            self.log_line(&format!(
                "{{\"event\":\"{name}\",\"id\":{},\"op\":\"{}\",\"t_us\":{t_us},\"trace\":{}}}",
                rt.id, rt.op, rt.trace,
            ));
        }
    }

    /// Logs a connection lifecycle event (`conn_accepted`,
    /// `conn_closed`, `readable`) from a shard event loop. `conn` is the
    /// server-wide connection id, `shard` the owning event loop, and `n`
    /// the bytes involved (read bytes for `readable`, 0 otherwise).
    /// These events go to the access log only — they have no request
    /// trace and never touch the ring or responses.
    pub fn conn_event(&self, event: &'static str, shard: usize, conn: u64, n: u64) {
        if lock(&self.log).is_none() {
            return;
        }
        let t_us = self.now_us();
        self.log_line(&format!(
            "{{\"conn\":{conn},\"event\":\"{event}\",\"n\":{n},\"shard\":{shard},\"t_us\":{t_us}}}"
        ));
    }

    /// Records a `shed` event with a reason and completes the trace
    /// with outcome `shed`. Used for validation failures, overload, and
    /// drain rejections — requests that never reached a solve.
    pub fn shed(&self, rt: &ReqTrace, reason: &str) {
        let t_us = self.now_us();
        lock(&rt.events).push(("shed", t_us));
        if lock(&self.log).is_some() {
            self.log_line(&format!(
                "{{\"event\":\"shed\",\"id\":{},\"op\":\"{}\",\"reason\":{},\"t_us\":{t_us},\"trace\":{}}}",
                rt.id,
                rt.op,
                json_str(reason),
                rt.trace,
            ));
        }
        self.finish(rt, "shed", 0, 0);
    }

    /// Completes a trace: emits the `written` event with phase
    /// durations, pushes a [`TraceRecord`] into the ring, observes the
    /// per-op latency histogram, and dumps the full lifecycle if the
    /// request was slower than the slow threshold.
    pub fn finish(&self, rt: &ReqTrace, outcome: &'static str, solve_us: u64, render_us: u64) {
        let t_us = self.now_us();
        let total_us = t_us.saturating_sub(rt.t0_us);
        let queue_us = total_us.saturating_sub(solve_us).saturating_sub(render_us);
        lock(&rt.events).push(("written", t_us));
        if lock(&self.log).is_some() {
            self.log_line(&format!(
                "{{\"event\":\"written\",\"id\":{},\"op\":\"{}\",\"outcome\":\"{outcome}\",\"queue_us\":{queue_us},\"render_us\":{render_us},\"solve_us\":{solve_us},\"t_us\":{t_us},\"total_us\":{total_us},\"trace\":{}}}",
                rt.id, rt.op, rt.trace,
            ));
        }
        domatic_telemetry::global().observe_labeled(
            "server.request_latency_us",
            &[("op", rt.op)],
            total_us,
        );
        let record = TraceRecord {
            trace: rt.trace,
            id: rt.id,
            op: rt.op,
            graph: rt.graph.clone(),
            alg: rt.alg.clone(),
            outcome,
            t0_us: rt.t0_us,
            total_us,
            queue_us,
            solve_us,
            render_us,
        };
        if self.ring_cap > 0 {
            let mut ring = lock(&self.ring);
            if ring.len() == self.ring_cap {
                ring.pop_front();
            }
            ring.push_back(record);
        }
        if self.slow_us.is_some_and(|limit| total_us >= limit) {
            self.dump_slow(rt, outcome, total_us);
        }
    }

    /// Writes a one-line lifecycle dump for a slow request — to the
    /// access log when attached, else to stderr so outliers are never
    /// silently dropped.
    fn dump_slow(&self, rt: &ReqTrace, outcome: &str, total_us: u64) {
        let mut events_json = String::from("[");
        for (i, (name, t)) in lock(&rt.events).iter().enumerate() {
            if i > 0 {
                events_json.push(',');
            }
            let _ = write!(events_json, "[\"{name}\",{t}]");
        }
        events_json.push(']');
        let line = format!(
            "{{\"alg\":{},\"event\":\"slow_request\",\"events\":{events_json},\"graph\":{},\"id\":{},\"op\":\"{}\",\"outcome\":\"{outcome}\",\"total_us\":{total_us},\"trace\":{}}}",
            json_str(&rt.alg),
            json_str(&rt.graph),
            rt.id,
            rt.op,
            rt.trace,
        );
        if lock(&self.log).is_some() {
            self.log_line(&line);
        } else {
            eprintln!("{line}");
        }
    }

    /// A copy of the completed-request ring, oldest first.
    pub fn ring_snapshot(&self) -> Vec<TraceRecord> {
        lock(&self.ring).iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    /// A Write that appends into a shared Vec<u8> (test sink).
    #[derive(Clone, Default)]
    struct Shared(StdArc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_are_logged_as_json_lines_with_monotone_timestamps() {
        let tracer = Tracer::new(8, None);
        let buf = Shared::default();
        tracer.set_log(Box::new(buf.clone()));
        let rt = tracer.begin(7, "solve", "ring", "greedy");
        tracer.event(&rt, "admitted");
        tracer.event(&rt, "cache_miss");
        tracer.finish(&rt, "ok", 120, 30);
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        let mut last_t = 0u64;
        for line in &lines {
            let v = domatic_telemetry::json::parse(line).expect("valid JSON");
            let t = v.get("t_us").and_then(|t| t.as_int()).unwrap() as u64;
            assert!(t >= last_t, "timestamps regress in {text}");
            last_t = t;
            assert_eq!(v.get("trace").and_then(|t| t.as_int()), Some(1));
        }
        assert!(lines[0].contains("\"event\":\"received\""));
        assert!(lines[3].contains("\"event\":\"written\""));
        assert!(lines[3].contains("\"solve_us\":120"));
    }

    #[test]
    fn ring_is_bounded_and_oldest_first() {
        let tracer = Tracer::new(2, None);
        for i in 0..5u64 {
            let rt = tracer.begin(i, "bounds", "g", "");
            tracer.finish(&rt, "ok", 0, 0);
        }
        let ring = tracer.ring_snapshot();
        assert_eq!(ring.len(), 2);
        assert_eq!((ring[0].trace, ring[1].trace), (4, 5));
        assert!(ring[0].trace < ring[1].trace);
        domatic_telemetry::json::parse(&ring[0].render_json()).expect("record renders valid JSON");
    }

    #[test]
    fn shed_records_outcome_without_a_log_sink() {
        let tracer = Tracer::new(4, None);
        let rt = tracer.begin(1, "solve", "nope", "greedy");
        tracer.shed(&rt, "unknown_graph");
        let ring = tracer.ring_snapshot();
        assert_eq!(ring.len(), 1);
        assert_eq!(ring[0].outcome, "shed");
    }

    #[test]
    fn slow_dump_goes_to_the_log_when_attached() {
        let tracer = Tracer::new(4, Some(0)); // everything is "slow"
        let buf = Shared::default();
        tracer.set_log(Box::new(buf.clone()));
        let rt = tracer.begin(9, "adapt", "ring", "ft");
        tracer.finish(&rt, "ok", 5, 1);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let slow: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("\"event\":\"slow_request\""))
            .collect();
        assert_eq!(slow.len(), 1, "{text}");
        let v = domatic_telemetry::json::parse(slow[0]).unwrap();
        assert!(v.get("events").is_some());
    }
}
