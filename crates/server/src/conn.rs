//! Per-connection state for the evented TCP transport: ordered response
//! slots, the outbound wire buffer, and the per-request sink that pool
//! workers complete responses through.
//!
//! ## Pipelining in receipt order
//!
//! A client may write many requests on one connection without waiting
//! for responses. The shard assigns each parsed request a monotone
//! *sequence slot* on its connection; whenever a response completes (on
//! the shard thread for inline ops and shed errors, on a pool worker for
//! solves) it is committed into its slot, and only the *contiguous
//! completed prefix* of slots is promoted to the wire buffer. The socket
//! therefore carries responses in exactly the order their requests were
//! received, no matter how batching, caching, or the pool reorder
//! completion — which is what makes pipelined responses attributable
//! without client-side id bookkeeping (ids are still echoed).
//!
//! ## Who touches what
//!
//! The connection itself ([`Conn`]) is owned by exactly one shard thread
//! and never locked. Only the [`OutQueue`] is shared: pool workers
//! commit response bytes into it and schedule the connection on the
//! shard's ready list, then wake the shard's epoll via its
//! [`mio::Waker`]. All socket reads and writes happen on the shard.

use std::collections::VecDeque;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Locks absorbing poison, same policy as the serve runtime.
fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// State one shard shares with pool workers completing its requests
/// (and with the acceptor handing it fresh connections).
pub(crate) struct ShardShared {
    /// Wakes the shard's epoll from any thread.
    pub waker: mio::Waker,
    /// Slab indices of connections with newly flushable bytes.
    pub ready: Mutex<Vec<usize>>,
    /// Freshly accepted connections awaiting registration.
    pub inbox: Mutex<Vec<TcpStream>>,
    /// Response slots allocated but not yet committed, shard-wide — the
    /// shard's in-flight depth, sampled into the
    /// `server.shard_queue_depth` histogram.
    pub depth: AtomicU64,
    /// Set after the server has drained: flush remaining bytes, close
    /// every connection, and exit the loop.
    pub finish: AtomicBool,
}

impl ShardShared {
    pub fn new(waker: mio::Waker) -> Self {
        ShardShared {
            waker,
            ready: Mutex::new(Vec::new()),
            inbox: Mutex::new(Vec::new()),
            depth: AtomicU64::new(0),
            finish: AtomicBool::new(false),
        }
    }

    /// Hands a fresh connection to the shard and wakes it.
    pub fn hand_off(&self, stream: TcpStream) {
        lock(&self.inbox).push(stream);
        let _ = self.waker.wake();
    }

    /// Tells the shard to flush out and exit, and wakes it.
    pub fn finish(&self) {
        self.finish.store(true, Ordering::Release);
        let _ = self.waker.wake();
    }
}

struct OutState {
    /// Sequence number of `slots[0]`.
    head_seq: u64,
    /// Next sequence to allocate.
    next_seq: u64,
    /// `None` = response still being computed; `Some` = completed bytes
    /// waiting for every earlier slot to complete.
    slots: VecDeque<Option<Vec<u8>>>,
    /// Bytes promoted from completed slots, partially written to the
    /// socket up to `wire_pos`.
    wire: Vec<u8>,
    wire_pos: usize,
    /// The connection is already on the shard's ready list.
    scheduled: bool,
    /// The socket died; commits are discarded from here on.
    dead: bool,
}

/// The shared outbound half of one connection.
pub(crate) struct OutQueue {
    /// This connection's slab index on its shard.
    conn: usize,
    shared: Arc<ShardShared>,
    state: Mutex<OutState>,
}

impl OutQueue {
    pub fn new(conn: usize, shared: Arc<ShardShared>) -> Self {
        OutQueue {
            conn,
            shared,
            state: Mutex::new(OutState {
                head_seq: 0,
                next_seq: 0,
                slots: VecDeque::new(),
                wire: Vec::new(),
                wire_pos: 0,
                scheduled: false,
                dead: false,
            }),
        }
    }

    /// Reserves the next in-order response slot.
    pub fn alloc(&self) -> u64 {
        let mut s = lock(&self.state);
        s.slots.push_back(None);
        let seq = s.next_seq;
        s.next_seq += 1;
        self.shared.depth.fetch_add(1, Ordering::Relaxed);
        seq
    }

    /// Completes slot `seq` with rendered response bytes; promotes the
    /// contiguous completed prefix to the wire and schedules the
    /// connection for flushing if that produced new flushable bytes.
    /// Called from any thread.
    pub fn commit(&self, seq: u64, bytes: Vec<u8>) {
        self.shared.depth.fetch_sub(1, Ordering::Relaxed);
        let mut s = lock(&self.state);
        if s.dead {
            return;
        }
        let idx = (seq - s.head_seq) as usize;
        s.slots[idx] = Some(bytes);
        let mut promoted = false;
        while matches!(s.slots.front(), Some(Some(_))) {
            let line = s.slots.pop_front().flatten().expect("checked Some");
            s.wire.extend_from_slice(&line);
            s.head_seq += 1;
            promoted = true;
        }
        let flushable = s.wire.len() > s.wire_pos;
        if promoted && flushable && !s.scheduled {
            s.scheduled = true;
            drop(s);
            lock(&self.shared.ready).push(self.conn);
            let _ = self.shared.waker.wake();
        }
    }

    /// Marks the queue dead (socket gone); pending and future commits
    /// are discarded.
    pub fn kill(&self) {
        lock(&self.state).dead = true;
    }

    /// No outstanding slots and no unwritten wire bytes.
    pub fn is_idle(&self) -> bool {
        let s = lock(&self.state);
        s.slots.is_empty() && s.wire_pos >= s.wire.len()
    }

    /// Writes as much buffered wire as the socket accepts right now.
    /// Returns `Ok(true)` when backlog remains (caller should watch for
    /// writable readiness), `Ok(false)` when fully drained. The shard
    /// thread is the only caller.
    pub fn flush_into(&self, stream: &mut TcpStream) -> std::io::Result<bool> {
        let mut s = lock(&self.state);
        s.scheduled = false;
        loop {
            if s.wire_pos >= s.wire.len() {
                s.wire.clear();
                s.wire_pos = 0;
                return Ok(false);
            }
            match stream.write(&s.wire[s.wire_pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => s.wire_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(true),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// The per-request response sink: collects the rendered line and commits
/// it into the request's slot exactly once (on flush, or on drop as a
/// backstop so an abandoned sink can never wedge the pipeline).
pub(crate) struct SlotSink {
    out: Arc<OutQueue>,
    seq: u64,
    buf: Vec<u8>,
    committed: bool,
}

impl SlotSink {
    /// A sink for slot `seq`, boxed into the [`ResponseSink`] shape the
    /// serve runtime writes responses through.
    ///
    /// [`ResponseSink`]: crate::server::ResponseSink
    pub fn sink(out: &Arc<OutQueue>, seq: u64) -> crate::server::ResponseSink {
        Arc::new(Mutex::new(SlotSink {
            out: Arc::clone(out),
            seq,
            buf: Vec::new(),
            committed: false,
        }))
    }

    fn commit(&mut self) {
        if !self.committed {
            self.committed = true;
            self.out.commit(self.seq, std::mem::take(&mut self.buf));
        }
    }
}

impl Write for SlotSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.commit();
        Ok(())
    }
}

impl Drop for SlotSink {
    fn drop(&mut self) {
        self.commit();
    }
}

/// One live connection, owned by its shard thread.
pub(crate) struct Conn {
    pub stream: TcpStream,
    pub out: Arc<OutQueue>,
    /// Unconsumed request bytes (at most one partial line after each
    /// read pass).
    pub read_buf: Vec<u8>,
    /// The peer half-closed (EOF seen); the connection lingers until its
    /// outstanding responses flush, then closes.
    pub read_closed: bool,
    /// The current epoll registration includes writable interest.
    pub want_write: bool,
    /// Server-wide monotone connection id, for trace events.
    pub id: u64,
}

/// A request line longer than this closes the connection: the framing is
/// JSON-lines and no legitimate request is remotely this large, so an
/// unbounded buffer would let one peer grow server memory without limit.
pub(crate) const MAX_LINE_BYTES: usize = 1 << 20;

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> Arc<ShardShared> {
        let poll = mio::Poll::new().unwrap();
        let waker = mio::Waker::new(&poll, mio::Token(0)).unwrap();
        // The poll is dropped; the waker keeps its eventfd alive and
        // wake() simply signals nobody — fine for queue-only tests.
        std::mem::forget(poll);
        Arc::new(ShardShared::new(waker))
    }

    #[test]
    fn out_of_order_commits_flush_in_receipt_order() {
        let sh = shared();
        let q = Arc::new(OutQueue::new(3, Arc::clone(&sh)));
        let (a, b, c) = (q.alloc(), q.alloc(), q.alloc());
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(sh.depth.load(Ordering::Relaxed), 3);

        // Completing the *last* request first promotes nothing.
        q.commit(c, b"third\n".to_vec());
        assert!(lock(&sh.ready).is_empty());
        assert!(!q.is_idle());

        // Completing the head promotes the contiguous prefix (just it).
        q.commit(a, b"first\n".to_vec());
        assert_eq!(lock(&sh.ready).as_slice(), &[3]);

        // The middle one releases the rest.
        q.commit(b, b"second\n".to_vec());
        let s = lock(&q.state);
        assert_eq!(&s.wire[..], b"first\nsecond\nthird\n");
        assert!(s.slots.is_empty());
        assert_eq!(sh.depth.load(Ordering::Relaxed), 0);
        // Scheduled once: the second promotion found it already queued.
        drop(s);
        assert_eq!(lock(&sh.ready).len(), 1);
    }

    #[test]
    fn slot_sink_commits_once_and_drop_is_a_backstop() {
        let sh = shared();
        let q = Arc::new(OutQueue::new(0, Arc::clone(&sh)));
        let seq = q.alloc();
        let sink = SlotSink::sink(&q, seq);
        {
            let mut w = lock(&sink);
            writeln!(w, "hello").unwrap();
            w.flush().unwrap();
            w.flush().unwrap(); // second flush is a no-op
        }
        drop(sink); // drop after commit does not double-commit
        let s = lock(&q.state);
        assert_eq!(&s.wire[..], b"hello\n");
        drop(s);

        // An abandoned (never flushed) sink still frees its slot — an
        // empty commit that adds no wire bytes.
        let seq2 = q.alloc();
        drop(SlotSink::sink(&q, seq2));
        let s = lock(&q.state);
        assert!(s.slots.is_empty(), "abandoned slot must not wedge");
        assert_eq!(&s.wire[..], b"hello\n");
        drop(s);
        assert_eq!(sh.depth.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn dead_queues_discard_commits() {
        let sh = shared();
        let q = Arc::new(OutQueue::new(0, Arc::clone(&sh)));
        let seq = q.alloc();
        q.kill();
        q.commit(seq, b"too late\n".to_vec());
        let s = lock(&q.state);
        assert!(s.wire.is_empty());
        assert_eq!(sh.depth.load(Ordering::Relaxed), 0);
    }
}
