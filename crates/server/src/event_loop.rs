//! The sharded epoll readiness loops behind [`Server::serve_tcp`].
//!
//! One acceptor thread (the `serve_tcp` caller) hands each accepted
//! socket to one of N shards round-robin. A shard is one thread, one
//! epoll instance, and a slab of connections it owns end to end:
//! non-blocking reads into per-connection buffers, incremental
//! JSON-lines framing, request dispatch, and write-interest-driven
//! flushing. Solve-shaped requests still fan out to the shared rayon
//! pool; completed responses come back through each connection's
//! [`OutQueue`] (receipt order, see the `conn` module) and the pool
//! worker wakes the owning shard's epoll through its eventfd waker.
//!
//! A shard services, per wakeup: readiness events (reads, then writes),
//! the inbox of freshly accepted sockets, and the ready list of
//! connections whose responses completed since the last pass. Writable
//! interest is registered only while a connection has backlog the socket
//! would not take — the quiet steady state is plain readable interest.
//!
//! On shutdown the acceptor drains the server (all in-flight jobs fan
//! out), then flips each shard's `finish` flag: shards keep flushing
//! until every connection is idle (bounded by a grace deadline), close
//! everything, and exit, and the acceptor joins them — the transport
//! leaks no threads.
//!
//! [`Server::serve_tcp`]: crate::server::Server::serve_tcp

use crate::conn::{Conn, OutQueue, ShardShared, SlotSink, MAX_LINE_BYTES};
use crate::server::Server;
use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Token reserved for each shard's waker eventfd; connection tokens are
/// slab indices, which can never reach it.
const WAKER: mio::Token = mio::Token(usize::MAX);

/// How long a finishing shard keeps trying to flush straggler backlog
/// before closing connections with bytes still queued.
const FINISH_GRACE: Duration = Duration::from_secs(5);

/// Bucket bounds for the `server.shard_queue_depth` histogram:
/// outstanding response slots per shard, sampled each loop pass.
const DEPTH_BUCKETS: [u64; 13] = [0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 16384];

/// One spawned shard: its handshake state plus the join handle the
/// acceptor uses to reap it.
pub(crate) struct Shard {
    pub shared: Arc<ShardShared>,
    handle: JoinHandle<()>,
}

/// Spawns `n` shard event loops for `server`.
pub(crate) fn spawn_shards(server: &Arc<Server>, n: usize) -> std::io::Result<Vec<Shard>> {
    let mut shards = Vec::with_capacity(n);
    for idx in 0..n {
        let poll = mio::Poll::new()?;
        let waker = mio::Waker::new(&poll, WAKER)?;
        let shared = Arc::new(ShardShared::new(waker));
        let server = Arc::clone(server);
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("serve-shard-{idx}"))
            .spawn(move || run_shard(&server, idx, &poll, &thread_shared))?;
        shards.push(Shard { shared, handle });
    }
    Ok(shards)
}

/// Tells every shard to flush out and exit, then joins them all.
pub(crate) fn finish_and_join(shards: Vec<Shard>) {
    for s in &shards {
        s.shared.finish();
    }
    for s in shards {
        let _ = s.handle.join();
    }
}

/// The slab of one shard's connections plus its free list.
struct Slab {
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
}

impl Slab {
    fn get_mut(&mut self, i: usize) -> Option<&mut Conn> {
        self.conns.get_mut(i).and_then(Option::as_mut)
    }
}

fn run_shard(server: &Arc<Server>, idx: usize, poll: &mio::Poll, shared: &Arc<ShardShared>) {
    let depth_hist = domatic_telemetry::global().labeled_histogram(
        "server.shard_queue_depth",
        &[("shard", &idx.to_string())],
        &DEPTH_BUCKETS,
    );
    let mut slab = Slab {
        conns: Vec::new(),
        free: Vec::new(),
    };
    let mut events = mio::Events::with_capacity(1024);
    let mut scratch = vec![0u8; 64 * 1024];
    let mut finish_deadline: Option<Instant> = None;
    let mut to_close: Vec<usize> = Vec::new();

    loop {
        let finishing = shared.finish.load(Ordering::Acquire);
        let timeout = if finishing {
            Duration::from_millis(10)
        } else {
            Duration::from_millis(200)
        };
        if poll.poll(&mut events, Some(timeout)).is_err() {
            break;
        }

        to_close.clear();
        for ev in events.iter() {
            if ev.token() == WAKER {
                shared.waker.drain();
                continue;
            }
            let i = ev.token().0;
            let Some(conn) = slab.get_mut(i) else {
                continue;
            };
            if ev.is_readable() && !conn.read_closed {
                if !read_ready(server, idx, conn, &mut scratch) {
                    to_close.push(i);
                    continue;
                }
            } else if ev.is_read_closed() {
                conn.read_closed = true;
            }
            if ev.is_writable() && flush(poll, conn, i).is_err() {
                to_close.push(i);
                continue;
            }
            if conn.read_closed && conn.out.is_idle() {
                to_close.push(i);
            }
        }

        // Adopt freshly accepted connections.
        let fresh: Vec<TcpStream> = std::mem::take(&mut *lock(&shared.inbox));
        for stream in fresh {
            adopt(server, idx, poll, &mut slab, shared, stream);
        }

        // Flush connections whose responses completed since the last
        // pass (scheduled by pool-worker commits).
        let ready: Vec<usize> = std::mem::take(&mut *lock(&shared.ready));
        for i in ready {
            let Some(conn) = slab.get_mut(i) else {
                continue;
            };
            if flush(poll, conn, i).is_err() || (conn.read_closed && conn.out.is_idle()) {
                to_close.push(i);
            }
        }

        to_close.sort_unstable();
        to_close.dedup();
        for &i in &to_close {
            close(server, idx, poll, &mut slab, i);
        }

        depth_hist.record(shared.depth.load(Ordering::Relaxed));

        if finishing {
            let deadline = *finish_deadline.get_or_insert_with(|| Instant::now() + FINISH_GRACE);
            let all_idle = slab.conns.iter().flatten().all(|c| c.out.is_idle());
            let inboxed = !lock(&shared.inbox).is_empty() || !lock(&shared.ready).is_empty();
            if (all_idle && !inboxed) || Instant::now() >= deadline {
                for i in 0..slab.conns.len() {
                    close(server, idx, poll, &mut slab, i);
                }
                break;
            }
        }
    }
}

/// Registers a freshly accepted socket into the shard's slab.
fn adopt(
    server: &Arc<Server>,
    idx: usize,
    poll: &mio::Poll,
    slab: &mut Slab,
    shared: &Arc<ShardShared>,
    stream: TcpStream,
) {
    if stream.set_nonblocking(true).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let i = slab.free.pop().unwrap_or_else(|| {
        slab.conns.push(None);
        slab.conns.len() - 1
    });
    if poll
        .register(&stream, mio::Token(i), mio::Interest::READABLE)
        .is_err()
    {
        slab.free.push(i);
        return;
    }
    let id = server.conn_opened();
    server.tracer().conn_event("conn_accepted", idx, id, 0);
    slab.conns[i] = Some(Conn {
        stream,
        out: Arc::new(OutQueue::new(i, Arc::clone(shared))),
        read_buf: Vec::new(),
        read_closed: false,
        want_write: false,
        id,
    });
}

/// Consumes readable readiness: reads to `WouldBlock`, frames complete
/// lines, and dispatches each through the serve runtime. Returns `false`
/// when the connection must be closed now (I/O error or an oversized
/// line); EOF just marks the read half closed so queued responses can
/// still flush.
fn read_ready(server: &Arc<Server>, idx: usize, conn: &mut Conn, scratch: &mut [u8]) -> bool {
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.read_closed = true;
                return true;
            }
            Ok(n) => {
                server
                    .tracer()
                    .conn_event("readable", idx, conn.id, n as u64);
                conn.read_buf.extend_from_slice(&scratch[..n]);
                if !dispatch_lines(server, conn) {
                    return false;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.read_closed = true;
                return false;
            }
        }
    }
}

/// Frames and dispatches every complete line in the read buffer. Each
/// non-empty line gets the connection's next response slot *before*
/// dispatch, which is what pins responses to receipt order regardless of
/// completion order. Returns `false` when a partial line has outgrown
/// [`MAX_LINE_BYTES`].
fn dispatch_lines(server: &Arc<Server>, conn: &mut Conn) -> bool {
    let mut start = 0usize;
    while let Some(pos) = conn.read_buf[start..].iter().position(|&b| b == b'\n') {
        let end = start + pos;
        let raw = String::from_utf8_lossy(&conn.read_buf[start..end]);
        let line = raw.trim();
        if !line.is_empty() {
            let seq = conn.out.alloc();
            let sink = SlotSink::sink(&conn.out, seq);
            // The shutdown flag a `shutdown` line sets is observed by the
            // acceptor loop; the shard just keeps serving until told to
            // finish.
            server.handle_line(line, &sink);
        }
        start = end + 1;
    }
    conn.read_buf.drain(..start);
    conn.read_buf.len() <= MAX_LINE_BYTES
}

/// Flushes a connection's wire buffer and keeps its epoll registration's
/// writable interest in sync with whether backlog remains.
fn flush(poll: &mio::Poll, conn: &mut Conn, i: usize) -> std::io::Result<()> {
    let backlog = conn.out.flush_into(&mut conn.stream)?;
    if backlog != conn.want_write {
        let interest = if backlog {
            mio::Interest::READABLE | mio::Interest::WRITABLE
        } else {
            mio::Interest::READABLE
        };
        poll.reregister(&conn.stream, mio::Token(i), interest)?;
        conn.want_write = backlog;
    }
    Ok(())
}

/// Tears one connection down: kills its out queue (late commits are
/// discarded), deregisters, closes the socket, and recycles the slot.
fn close(server: &Arc<Server>, idx: usize, poll: &mio::Poll, slab: &mut Slab, i: usize) {
    let Some(conn) = slab.conns.get_mut(i).and_then(Option::take) else {
        return;
    };
    conn.out.kill();
    let _ = poll.deregister(&conn.stream);
    server.conn_closed();
    server.tracer().conn_event("conn_closed", idx, conn.id, 0);
    slab.free.push(i);
}
