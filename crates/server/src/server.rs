//! The serve runtime: admission control, micro-batching, cache, fan-out.
//!
//! ## Life of a request
//!
//! 1. A transport thread parses the line and validates it (graph name,
//!    solver name, failure model) — malformed requests are answered
//!    immediately with a typed error and never occupy the pool.
//! 2. The request is canonicalized to a solve key. A cache hit is
//!    answered on the spot with the stored bytes.
//! 3. On a miss, the pending-batch table is consulted *under one lock*:
//!    if a batch for the key is already open, the request joins it as a
//!    waiter (no new work); otherwise admission control runs — at or
//!    above `capacity` in-flight jobs the request is rejected with a
//!    typed `overloaded` error — and a new batch is opened and its job
//!    `rayon::spawn`ed onto the vendored pool.
//! 4. The job sleeps out the remainder of the batching window (joiners
//!    accumulate meanwhile), closes the batch, re-checks the cache, and
//!    solves once. The rendered payload enters the LRU cache and fans
//!    out to every waiter; waiters whose deadline passed get a typed
//!    `deadline` error instead, and if *all* waiters expired the solve
//!    is skipped entirely.
//!
//! Every solver is deterministic at a fixed seed and payloads are
//! rendered with a fixed field order, so the bytes a waiter receives do
//! not depend on thread count, batching, or cache state.
//!
//! A closed batch and its not-yet-cached solve leave a small window in
//! which an identical request opens a second batch and re-solves; the
//! result is byte-identical and the cache insert idempotent, so the only
//! cost is one redundant solve — accepted to keep the pending table a
//! plain map under a plain lock.

use crate::cache::SolveCache;
use crate::protocol::{self, Op, Request};
use crate::trace::{ReqTrace, Tracer};
use domatic_core::error::DomaticError;
use domatic_core::hash::{config_hash, versioned_graph_hash, CanonicalHasher};
use domatic_core::incremental::{repair_schedule, GraphDelta, RepairMode};
use domatic_core::solver::make_solver;
use domatic_graph::Graph;
use domatic_netsim::{compare_static_adaptive, AdaptiveConfig, FailureModel, FailurePlan};
use domatic_schedule::{Batteries, Schedule};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// Where a response line goes: any shared writer (a TCP stream, stdout,
/// or a test buffer). Writes are line-atomic under the mutex.
pub type ResponseSink = Arc<Mutex<dyn Write + Send>>;

/// Locks absorbing poison: the server must keep serving even if some
/// earlier holder panicked mid-section (sections below never leave
/// state half-updated across a panic boundary).
fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn rlock<T: ?Sized>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn wlock<T: ?Sized>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum solve jobs in flight; admission beyond this returns a
    /// typed `overloaded` error (bounded-queue backpressure).
    pub capacity: usize,
    /// How long a freshly opened batch stays open for identical
    /// requests to coalesce into it. Zero disables batching.
    pub batch_window: Duration,
    /// Byte budget of the LRU solve cache.
    pub cache_bytes: usize,
    /// Requests whose total latency reaches this many milliseconds get
    /// their full event lifecycle dumped to the access log (stderr when
    /// no log is attached). `None` disables the slow-request log.
    pub slow_ms: Option<u64>,
    /// How many completed-request trace records the in-memory ring
    /// keeps for the `profile` op.
    pub trace_ring: usize,
    /// Shard event loops for the TCP transport. Each shard owns a slice
    /// of connections end to end (reads, framing, writes) on one thread;
    /// solves still fan out to the shared pool. One shard saturates a
    /// single core; more shards spread readiness work on bigger hosts.
    pub shards: usize,
    /// Second load-shedding tier: once this many batch waiters are
    /// queued server-wide, even joins to open batches are rejected
    /// (`shed_tier: "join"`). The first tier (`"miss"`) sheds cache-miss
    /// traffic at `capacity`; cache hits are never shed. The default is
    /// high enough that only pathological fan-in reaches it.
    pub shed_join_waiters: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            capacity: 64,
            batch_window: Duration::from_millis(2),
            cache_bytes: 16 << 20,
            slow_ms: None,
            trace_ring: 256,
            shards: 1,
            shed_join_waiters: 65_536,
        }
    }
}

/// Monotone event counters, mirrored into `domatic-telemetry` so
/// `--trace` and JSON sinks see them alongside solver spans.
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    solves: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    batch_joined: AtomicU64,
    overloads: AtomicU64,
    shed_miss: AtomicU64,
    shed_join: AtomicU64,
    deadline_expired: AtomicU64,
    errors: AtomicU64,
    mutations: AtomicU64,
    repairs: AtomicU64,
    repair_fallbacks: AtomicU64,
    lineage_invalidations: AtomicU64,
}

fn bump(counter: &AtomicU64, telemetry_name: &str, delta: u64) {
    counter.fetch_add(delta, Ordering::Relaxed);
    domatic_telemetry::global().incr(telemetry_name, delta);
}

/// A point-in-time copy of the server's counters (the `stats` op).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Request lines parsed (including ones answered with errors).
    pub requests: u64,
    /// Underlying solves actually executed (batching and caching make
    /// this less than the solve-shaped request count).
    pub solves: u64,
    /// Responses served from the cache.
    pub cache_hits: u64,
    /// Cacheable requests that missed.
    pub cache_misses: u64,
    /// Entries evicted to hold the byte budget.
    pub cache_evictions: u64,
    /// Requests that coalesced into an already-open batch.
    pub batch_joined: u64,
    /// Requests rejected by admission control (both shed tiers).
    pub overloads: u64,
    /// Overloads from the first shed tier: cache-miss traffic rejected
    /// at `capacity` in-flight jobs.
    pub shed_miss: u64,
    /// Overloads from the second shed tier: batch joins rejected under
    /// severe waiter pressure (`shed_join_waiters`).
    pub shed_join: u64,
    /// Requests answered with a deadline error.
    pub deadline_expired: u64,
    /// Requests answered with any typed error.
    pub errors: u64,
    /// Graph mutations applied (each producing a new graph version).
    pub mutations: u64,
    /// Solves whose projected previous schedule certified as equal to
    /// the fresh solution (the old plan survived the delta intact).
    pub repairs: u64,
    /// Solves after a mutation where the projected previous schedule was
    /// invalid or different and the full re-solve's answer won.
    pub repair_fallbacks: u64,
    /// Cache entries dropped by hash-lineage invalidation (descendant
    /// versions superseding the entries' graph version).
    pub lineage_invalidations: u64,
    /// Payload bytes currently cached.
    pub cache_bytes: u64,
    /// Results currently cached.
    pub cache_entries: u64,
    /// Jobs currently in flight.
    pub inflight: u64,
    /// Live TCP connections (zero under the stdio transport).
    pub connections: u64,
}

/// Schedules solved against one graph version, keyed by
/// solver/config/battery subkey — the repair hints the *next* version's
/// solves project through their delta.
type HintMap = Arc<Mutex<HashMap<u64, Schedule>>>;

/// The immediately superseded version of a named graph: the delta that
/// replaced it plus the schedules solved against it (repair hints).
struct PrevVersion {
    delta: GraphDelta,
    hints: HintMap,
}

/// The current version of a named graph, with its mutation lineage.
struct NamedGraph {
    graph: Arc<Graph>,
    /// Content hash of this version (topology + battery overrides) —
    /// identical to what registering the same content fresh would hash.
    hash: u64,
    /// Per-node battery levels pinned by `set_battery` mutations,
    /// overlaying the per-request uniform level.
    overrides: Arc<BTreeMap<u32, u64>>,
    /// Version counter: 0 as registered, +1 per applied mutation.
    version: u64,
    /// Hash of the immediately preceding version.
    parent: Option<u64>,
    /// Hashes of every superseded version, oldest first.
    ancestors: Vec<u64>,
    /// Schedules solved against *this* version (future repair hints).
    hints: HintMap,
    /// The superseded version's delta + hints, for incremental repair.
    prev: Option<PrevVersion>,
}

impl NamedGraph {
    fn fresh(graph: Graph, overrides: BTreeMap<u32, u64>) -> Self {
        let hash = versioned_graph_hash(&graph, &overrides);
        NamedGraph {
            graph: Arc::new(graph),
            hash,
            overrides: Arc::new(overrides),
            version: 0,
            parent: None,
            ancestors: Vec::new(),
            hints: Arc::new(Mutex::new(HashMap::new())),
            prev: None,
        }
    }
}

struct Waiter {
    id: u64,
    deadline: Option<Instant>,
    deadline_ms: u64,
    sink: ResponseSink,
    trace: Arc<ReqTrace>,
}

impl Waiter {
    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// One open coalescing batch: the waiters accumulated for a solve key.
struct Batch {
    created: Instant,
    waiters: Mutex<Vec<Waiter>>,
}

/// What an incremental solve can repair against: the delta that
/// produced the current graph version and the superseded version's
/// solved schedules.
struct RepairContext {
    delta: GraphDelta,
    prev_hints: HintMap,
}

/// Everything a spawned job needs to compute its payload. The graph
/// fields are a snapshot taken at submit time: a mutation landing while
/// the job is in flight does not change what this job solves (its
/// insert is refused by the cache's retired set instead).
struct JobSpec {
    key: u64,
    req: Request,
    graph: Arc<Graph>,
    graph_hash: u64,
    overrides: Arc<BTreeMap<u32, u64>>,
    hints: HintMap,
    repair: Option<RepairContext>,
}

/// The solve service. Construct with [`Server::new`], register graphs
/// with [`Server::add_graph`], then run a transport loop
/// ([`Server::serve_stdio`] / [`Server::serve_tcp`]) or drive
/// [`Server::handle_line`] directly (tests do).
pub struct Server {
    cfg: ServerConfig,
    graphs: RwLock<HashMap<String, NamedGraph>>,
    cache: Mutex<SolveCache>,
    pending: Mutex<HashMap<u64, Arc<Batch>>>,
    inflight: Mutex<usize>,
    idle: Condvar,
    accepting: AtomicBool,
    shutdown_requested: AtomicBool,
    counters: Counters,
    tracer: Tracer,
    /// Batch waiters currently queued server-wide (batch leaders and
    /// joiners alike); drives the `"join"` shed tier.
    queued_waiters: AtomicU64,
    /// Live TCP connections across all shards.
    connections: AtomicU64,
    /// Monotone connection-id source for trace events.
    conn_ids: AtomicU64,
}

impl Server {
    /// A server with no graphs yet.
    pub fn new(cfg: ServerConfig) -> Self {
        Server {
            cache: Mutex::new(SolveCache::new(cfg.cache_bytes)),
            tracer: Tracer::new(
                cfg.trace_ring,
                cfg.slow_ms.map(|ms| ms.saturating_mul(1000)),
            ),
            cfg,
            graphs: RwLock::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            inflight: Mutex::new(0),
            idle: Condvar::new(),
            accepting: AtomicBool::new(true),
            shutdown_requested: AtomicBool::new(false),
            counters: Counters::default(),
            queued_waiters: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            conn_ids: AtomicU64::new(0),
        }
    }

    /// Attaches a JSON-lines access-log sink: every traced request
    /// writes its lifecycle events there. Trace output never touches
    /// response bytes, so responses stay byte-identical with or without
    /// a log attached.
    pub fn set_access_log(&self, w: Box<dyn Write + Send>) {
        self.tracer.set_log(w);
    }

    /// Registers a graph under `name`, hashing it once.
    pub fn add_graph(&self, name: impl Into<String>, graph: Graph) {
        self.add_graph_with_batteries(name, graph, BTreeMap::new());
    }

    /// Registers a graph under `name` with per-node battery overrides
    /// already pinned — the state a `set_battery` mutation history
    /// produces, registered fresh. The version hash covers the
    /// overrides, so a mutated graph and an identically configured
    /// fresh registration cache under the same keys.
    pub fn add_graph_with_batteries(
        &self,
        name: impl Into<String>,
        graph: Graph,
        overrides: BTreeMap<u32, u64>,
    ) {
        wlock(&self.graphs).insert(name.into(), NamedGraph::fresh(graph, overrides));
    }

    /// The registered graph names, sorted.
    pub fn graph_names(&self) -> Vec<String> {
        let mut names: Vec<String> = rlock(&self.graphs).keys().cloned().collect();
        names.sort_unstable();
        names
    }

    /// Test introspection: the distinct graph-version hashes current
    /// cache entries were solved against, sorted.
    #[doc(hidden)]
    pub fn cache_graph_hashes(&self) -> Vec<u64> {
        lock(&self.cache).graph_hashes()
    }

    /// Test introspection: a named graph's `(hash, version, ancestors)`.
    #[doc(hidden)]
    pub fn graph_lineage(&self, name: &str) -> Option<(u64, u64, Vec<u64>)> {
        rlock(&self.graphs)
            .get(name)
            .map(|g| (g.hash, g.version, g.ancestors.clone()))
    }

    /// Whether a `shutdown` request has been received.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::Acquire)
    }

    /// Current counter values.
    pub fn stats(&self) -> ServerStatsSnapshot {
        let c = &self.counters;
        let (cache_bytes, cache_entries) = {
            let cache = lock(&self.cache);
            (cache.bytes() as u64, cache.len() as u64)
        };
        ServerStatsSnapshot {
            requests: c.requests.load(Ordering::Relaxed),
            solves: c.solves.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            cache_evictions: c.cache_evictions.load(Ordering::Relaxed),
            batch_joined: c.batch_joined.load(Ordering::Relaxed),
            overloads: c.overloads.load(Ordering::Relaxed),
            shed_miss: c.shed_miss.load(Ordering::Relaxed),
            shed_join: c.shed_join.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            mutations: c.mutations.load(Ordering::Relaxed),
            repairs: c.repairs.load(Ordering::Relaxed),
            repair_fallbacks: c.repair_fallbacks.load(Ordering::Relaxed),
            lineage_invalidations: c.lineage_invalidations.load(Ordering::Relaxed),
            cache_bytes,
            cache_entries,
            inflight: *lock(&self.inflight) as u64,
            connections: self.connections.load(Ordering::Relaxed),
        }
    }

    /// The server's tracing spine, shared with the shard event loops.
    pub(crate) fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Accounts a newly accepted connection (gauge up) and hands out its
    /// server-wide connection id for trace events.
    pub(crate) fn conn_opened(&self) -> u64 {
        let live = self.connections.fetch_add(1, Ordering::Relaxed) + 1;
        domatic_telemetry::global().set_gauge("server.connections", live);
        self.conn_ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Accounts a closed connection (gauge down).
    pub(crate) fn conn_closed(&self) {
        let live = self
            .connections
            .fetch_sub(1, Ordering::Relaxed)
            .saturating_sub(1);
        domatic_telemetry::global().set_gauge("server.connections", live);
    }

    /// Stops admitting work and blocks until every in-flight job has
    /// fanned out — the graceful-drain half of shutdown. Idempotent.
    pub fn drain(&self) {
        self.accepting.store(false, Ordering::Release);
        let mut inflight = lock(&self.inflight);
        while *inflight > 0 {
            let (guard, _) = self
                .idle
                .wait_timeout(inflight, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            inflight = guard;
        }
    }

    /// Handles one request line, writing any response(s) to `sink`.
    /// Returns `true` when the line asked for shutdown (transports stop
    /// reading and drain).
    pub fn handle_line(self: &Arc<Self>, line: &str, sink: &ResponseSink) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return false;
        }
        bump(&self.counters.requests, "server.requests", 1);
        let req = match protocol::parse_request(line) {
            Ok(r) => r,
            Err((id, e)) => {
                self.respond_err(sink, id, &e);
                return false;
            }
        };
        match req.op {
            Op::Ping => {
                self.respond(sink, &protocol::ok_line(req.id, "{\"pong\":true}"));
                false
            }
            Op::Stats => {
                let payload = render_stats(&self.stats());
                self.respond(sink, &protocol::ok_line(req.id, &payload));
                false
            }
            Op::Metrics => {
                let payload = format!("{{\"exposition\":{}}}", json_str(&self.metrics_text()));
                self.respond(sink, &protocol::ok_line(req.id, &payload));
                false
            }
            Op::Profile => {
                let payload = self.render_profile();
                self.respond(sink, &protocol::ok_line(req.id, &payload));
                false
            }
            Op::Shutdown => {
                self.accepting.store(false, Ordering::Release);
                self.shutdown_requested.store(true, Ordering::Release);
                self.respond(sink, &protocol::ok_line(req.id, "{\"draining\":true}"));
                true
            }
            Op::Mutate => {
                // Mutations are applied inline on the transport thread,
                // under the graphs write lock: together with the
                // per-connection receipt-order dispatch, a client that
                // pipelines `mutate` then `solve` on one connection is
                // guaranteed to solve the mutated version.
                let rt = self.tracer.begin(req.id, "mutate", &req.graph, &req.alg);
                match self.apply_mutation(&req) {
                    Ok(payload) => {
                        self.tracer.event(&rt, "mutation_applied");
                        self.respond(sink, &protocol::ok_line(req.id, &payload));
                        self.tracer.finish(&rt, "ok", 0, 0);
                    }
                    Err(e) => {
                        self.tracer.shed(&rt, "mutation_rejected");
                        self.respond_err(sink, req.id, &e);
                    }
                }
                false
            }
            Op::Solve | Op::Bounds | Op::Adapt => {
                self.submit(req, sink);
                false
            }
        }
    }

    /// Applies one churn delta to a named graph, producing a new
    /// version: the graph/overrides are swapped under the write lock,
    /// lineage is recorded, the superseded version's cache entries are
    /// retired, and the previous version's solved schedules become the
    /// repair hints for solves against the new version. Returns the
    /// rendered mutate result payload.
    fn apply_mutation(&self, req: &Request) -> Result<String, DomaticError> {
        let delta = req.delta.as_ref().expect("mutate request carries a delta");
        let mut graphs = wlock(&self.graphs);
        let named = graphs
            .get_mut(&req.graph)
            .ok_or_else(|| DomaticError::UnknownGraph {
                name: req.graph.clone(),
            })?;
        let (new_graph, new_overrides) = match delta {
            GraphDelta::SetBattery { node, value } => {
                let n = named.graph.n();
                if (*node as usize) >= n {
                    return Err(DomaticError::BadRequest {
                        message: format!("node {node} out of range for graph with {n} nodes"),
                    });
                }
                if named.overrides.get(node) == Some(value) {
                    return Err(DomaticError::BadRequest {
                        message: format!("node {node} battery is already {value}"),
                    });
                }
                let mut overrides = (*named.overrides).clone();
                overrides.insert(*node, *value);
                (Arc::clone(&named.graph), Arc::new(overrides))
            }
            GraphDelta::RemoveNode { node } => {
                let graph = delta.apply(&named.graph)?;
                // Override keys compact exactly like node ids do.
                let overrides: BTreeMap<u32, u64> = named
                    .overrides
                    .iter()
                    .filter(|(&k, _)| k != *node)
                    .map(|(&k, &v)| (if k > *node { k - 1 } else { k }, v))
                    .collect();
                (Arc::new(graph), Arc::new(overrides))
            }
            _ => (
                Arc::new(delta.apply(&named.graph)?),
                Arc::clone(&named.overrides),
            ),
        };
        let parent_hash = named.hash;
        let new_hash = versioned_graph_hash(&new_graph, &new_overrides);
        named.version += 1;
        named.parent = Some(parent_hash);
        named.ancestors.push(parent_hash);
        named.prev = Some(PrevVersion {
            delta: delta.clone(),
            hints: Arc::clone(&named.hints),
        });
        named.hints = Arc::new(Mutex::new(HashMap::new()));
        named.graph = new_graph;
        named.overrides = new_overrides;
        named.hash = new_hash;
        let (version, n, m) = (named.version, named.graph.n(), named.graph.m());

        // Lineage invalidation: retire the superseded version — unless
        // some registered graph is still exactly that content, in which
        // case its (content-addressed, byte-identical) entries stay
        // valid. Live hashes are also revived: a mutation chain that
        // returns a graph to earlier content makes that content
        // cacheable again.
        let live: Vec<u64> = graphs.values().map(|g| g.hash).collect();
        {
            let mut cache = lock(&self.cache);
            if !live.contains(&parent_hash) {
                let dropped = cache.retire_graphs(&[parent_hash]);
                if dropped > 0 {
                    bump(
                        &self.counters.lineage_invalidations,
                        "cache.lineage_invalidations",
                        dropped,
                    );
                }
            }
            cache.revive_graphs(&live);
        }
        bump(&self.counters.mutations, "server.mutations", 1);
        Ok(format!(
            "{{\"action\":\"{}\",\"graph\":{},\"graph_hash\":\"{new_hash:016x}\",\"m\":{m},\"n\":{n},\"parent_hash\":\"{parent_hash:016x}\",\"version\":{version}}}",
            delta.action(),
            json_str(&req.graph),
        ))
    }

    /// Validates, canonicalizes, and routes one solve-shaped request
    /// through cache → batch-join → admission. Every request entering
    /// here gets a trace id; events flow to the access log and the
    /// profile ring, never into responses.
    fn submit(self: &Arc<Self>, req: Request, sink: &ResponseSink) {
        let op_name = match req.op {
            Op::Solve => "solve",
            Op::Bounds => "bounds",
            Op::Adapt => "adapt",
            _ => unreachable!("only solve-shaped ops are submitted"),
        };
        let rt = self.tracer.begin(req.id, op_name, &req.graph, &req.alg);
        // Snapshot the current graph version under the read lock: the
        // job solves exactly this version even if a mutation lands
        // while it is in flight (the cache then refuses its insert).
        let snapshot = {
            let graphs = rlock(&self.graphs);
            graphs.get(&req.graph).map(|named| {
                (
                    Arc::clone(&named.graph),
                    named.hash,
                    Arc::clone(&named.overrides),
                    Arc::clone(&named.hints),
                    named.prev.as_ref().map(|p| RepairContext {
                        delta: p.delta.clone(),
                        prev_hints: Arc::clone(&p.hints),
                    }),
                )
            })
        };
        let Some((graph, graph_hash, overrides, hints, repair)) = snapshot else {
            self.tracer.shed(&rt, "unknown_graph");
            self.respond_err(
                sink,
                req.id,
                &DomaticError::UnknownGraph {
                    name: req.graph.clone(),
                },
            );
            return;
        };
        // Validate cheaply on the transport thread so bad requests never
        // occupy pool capacity.
        if matches!(req.op, Op::Solve | Op::Adapt) {
            if let Err(e) = make_solver(&req.alg) {
                self.tracer.shed(&rt, "unknown_solver");
                self.respond_err(sink, req.id, &e);
                return;
            }
        }
        if req.op == Op::Adapt && req.cfg.hops > 1 {
            // The adaptive runtime's coverage census is 1-hop; accepting a
            // wider radius would plan d-hop schedules and then misjudge
            // them, so the combination is rejected rather than mis-served.
            // This is a config-shaped refusal (the solver configuration is
            // unsupported for this op), so it travels as a typed `config`
            // error rather than a generic bad request.
            let e = DomaticError::Config {
                message: "adapt does not support hops > 1".to_string(),
            };
            self.tracer.shed(&rt, "hops_unsupported");
            self.respond_err(sink, req.id, &e);
            return;
        }
        if req.op == Op::Adapt && FailureModel::parse(&req.failures, req.p).is_none() {
            let e = DomaticError::BadRequest {
                message: format!(
                    "unknown failure model '{}' (none|crash|battery-noise|transient-loss|all)",
                    req.failures
                ),
            };
            self.tracer.shed(&rt, "unknown_failure_model");
            self.respond_err(sink, req.id, &e);
            return;
        }

        let spec = JobSpec {
            key: solve_key(&req, graph_hash),
            graph,
            graph_hash,
            overrides,
            hints,
            // Repair applies to solves only: `bounds` and `adapt` have no
            // previous schedule to project.
            repair: if req.op == Op::Solve { repair } else { None },
            req,
        };
        self.tracer.event(&rt, "admitted");

        if let Some(payload) = lock(&self.cache).get(spec.key) {
            bump(&self.counters.cache_hits, "server.cache.hit", 1);
            self.tracer.event(&rt, "cache_hit");
            self.respond(sink, &protocol::ok_line(spec.req.id, &payload));
            self.tracer.finish(&rt, "ok", 0, 0);
            return;
        }

        let waiter = Waiter {
            id: spec.req.id,
            deadline: spec
                .req
                .deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            deadline_ms: spec.req.deadline_ms.unwrap_or(0),
            sink: Arc::clone(sink),
            trace: Arc::clone(&rt),
        };

        // Join-or-open must be atomic per key, so the whole decision sits
        // under the pending lock (lock order: pending, then inflight).
        let mut pending = lock(&self.pending);
        if let Some(batch) = pending.get(&spec.key) {
            // Second shed tier: joins are normally free (no new work), but
            // each queued waiter holds a sink and response slot, so under
            // severe fan-in even joins are refused. Cache hits never reach
            // this path — they are served to the last.
            if self.queued_waiters.load(Ordering::Relaxed) >= self.cfg.shed_join_waiters as u64 {
                drop(pending);
                bump(&self.counters.overloads, "server.overload", 1);
                bump(&self.counters.shed_join, "server.shed.join", 1);
                self.tracer.shed(&rt, "overloaded_join");
                self.respond_err(
                    sink,
                    spec.req.id,
                    &DomaticError::Overloaded {
                        capacity: self.cfg.capacity,
                        tier: "join",
                    },
                );
                return;
            }
            bump(&self.counters.batch_joined, "server.batch.joined", 1);
            self.tracer.event(&rt, "batch_joined");
            self.queued_waiters.fetch_add(1, Ordering::Relaxed);
            lock(&batch.waiters).push(waiter);
            return;
        }
        if !self.accepting.load(Ordering::Acquire) {
            drop(pending);
            self.tracer.shed(&rt, "shutting_down");
            self.respond_err(sink, spec.req.id, &DomaticError::ShuttingDown);
            return;
        }
        {
            let mut inflight = lock(&self.inflight);
            if *inflight >= self.cfg.capacity {
                drop(inflight);
                drop(pending);
                bump(&self.counters.overloads, "server.overload", 1);
                bump(&self.counters.shed_miss, "server.shed.miss", 1);
                self.tracer.shed(&rt, "overloaded_miss");
                self.respond_err(
                    sink,
                    spec.req.id,
                    &DomaticError::Overloaded {
                        capacity: self.cfg.capacity,
                        tier: "miss",
                    },
                );
                return;
            }
            *inflight += 1;
            domatic_telemetry::global().set_gauge("server.inflight", *inflight as u64);
        }
        // A miss is a request that had to open a batch; joiners count as
        // `batch_joined` instead, so hits + misses + joins partitions the
        // admitted cacheable traffic.
        bump(&self.counters.cache_misses, "server.cache.miss", 1);
        self.tracer.event(&rt, "cache_miss");
        let batch = Arc::new(Batch {
            created: Instant::now(),
            waiters: Mutex::new(vec![waiter]),
        });
        self.queued_waiters.fetch_add(1, Ordering::Relaxed);
        pending.insert(spec.key, Arc::clone(&batch));
        drop(pending);

        let server = Arc::clone(self);
        rayon::spawn(move || {
            server.run_job(spec, batch);
        });
    }

    /// The spawned half: wait out the batching window, close the batch,
    /// solve once, cache, fan out. Runs on a vendored-rayon pool worker;
    /// the solver's own parallel iterators nest inside it.
    fn run_job(self: &Arc<Self>, spec: JobSpec, batch: Arc<Batch>) {
        if let Some(rest) = self.cfg.batch_window.checked_sub(batch.created.elapsed()) {
            if !rest.is_zero() {
                std::thread::sleep(rest);
            }
        }
        // Close the batch: joiners either got in before this removal or
        // will open a fresh batch (and hit the cache once we fill it).
        let waiters: Vec<Waiter> = {
            let mut pending = lock(&self.pending);
            pending.remove(&spec.key);
            std::mem::take(&mut *lock(&batch.waiters))
        };
        self.queued_waiters
            .fetch_sub(waiters.len() as u64, Ordering::Relaxed);

        // A prior batch may have filled the key between this leader's
        // admission miss and now. The solve/render phase timing belongs
        // to the batch: it is recorded against the leader's trace events
        // and stamped into every waiter's completion record.
        let leader = waiters.first().map(|w| Arc::clone(&w.trace));
        let cached = lock(&self.cache).get(spec.key);
        let mut solve_us = 0u64;
        let mut render_us = 0u64;
        let outcome: Result<Arc<str>, DomaticError> = match cached {
            Some(payload) => {
                if let Some(rt) = &leader {
                    self.tracer.event(rt, "cache_hit");
                }
                Ok(payload)
            }
            None if waiters.iter().all(Waiter::expired) => {
                // Nobody is left to receive the result: skip the solve and
                // keep serving. (There is always at least the opener.)
                self.finish(&waiters, None, 0, 0);
                return;
            }
            None => {
                if let Some(rt) = &leader {
                    self.tracer.event(rt, "solve_start");
                }
                let computed = self.compute(&spec);
                if let Some(rt) = &leader {
                    self.tracer.event(rt, "solve_end");
                }
                computed.map(|(payload, s_us, r_us, repair_mode)| {
                    solve_us = s_us;
                    render_us = r_us;
                    domatic_telemetry::global().observe_labeled(
                        "server.solve_latency_us",
                        &[("alg", &spec.req.alg), ("graph", &spec.req.graph)],
                        s_us,
                    );
                    if let Some(mode) = repair_mode {
                        if let Some(rt) = &leader {
                            self.tracer.event(rt, mode.trace_event());
                        }
                        match mode {
                            RepairMode::Repaired => {
                                bump(&self.counters.repairs, "server.repair.incremental", 1)
                            }
                            RepairMode::FullResolve => {
                                bump(&self.counters.repair_fallbacks, "server.repair.fallback", 1)
                            }
                        }
                    }
                    if let Some(rt) = &leader {
                        self.tracer.event(rt, "rendered");
                    }
                    let payload: Arc<str> = payload.into();
                    bump(&self.counters.solves, "server.solves", 1);
                    let (evicted, bytes) = {
                        let mut cache = lock(&self.cache);
                        let evicted = cache.insert(spec.key, spec.graph_hash, Arc::clone(&payload));
                        (evicted, cache.bytes() as u64)
                    };
                    if evicted > 0 {
                        bump(
                            &self.counters.cache_evictions,
                            "server.cache.eviction",
                            evicted,
                        );
                    }
                    domatic_telemetry::global().set_gauge("runtime.cache_bytes", bytes);
                    payload
                })
            }
        };
        self.finish(&waiters, Some(outcome), solve_us, render_us);
    }

    /// Fans a job outcome out to its waiters (deadline-checked per
    /// waiter) and releases the in-flight slot. `None` means the solve
    /// was skipped because every waiter had already expired.
    /// `solve_us`/`render_us` are the batch's phase durations, stamped
    /// into each waiter's trace completion.
    fn finish(
        &self,
        waiters: &[Waiter],
        outcome: Option<Result<Arc<str>, DomaticError>>,
        solve_us: u64,
        render_us: u64,
    ) {
        for w in waiters {
            if w.expired() {
                bump(
                    &self.counters.deadline_expired,
                    "server.deadline.expired",
                    1,
                );
                self.tracer.event(&w.trace, "deadline_expired");
                self.respond_err(
                    &w.sink,
                    w.id,
                    &DomaticError::DeadlineExceeded {
                        deadline_ms: w.deadline_ms,
                    },
                );
                self.tracer
                    .finish(&w.trace, "deadline", solve_us, render_us);
                continue;
            }
            match outcome
                .as_ref()
                .expect("unexpired waiter implies an outcome")
            {
                Ok(payload) => {
                    self.respond(&w.sink, &protocol::ok_line(w.id, payload));
                    self.tracer.finish(&w.trace, "ok", solve_us, render_us);
                }
                Err(e) => {
                    self.respond_err(&w.sink, w.id, e);
                    self.tracer.finish(&w.trace, "error", solve_us, render_us);
                }
            }
        }
        let mut inflight = lock(&self.inflight);
        *inflight -= 1;
        domatic_telemetry::global().set_gauge("server.inflight", *inflight as u64);
        if *inflight == 0 {
            self.idle.notify_all();
        }
    }

    /// Computes a request's payload (with solve/render split timing, in
    /// µs, and the repair mode for post-mutation solves). Panics inside
    /// solver code are caught and surfaced as a typed error so one
    /// poisoned instance cannot take the worker (or the server) down.
    fn compute(
        &self,
        spec: &JobSpec,
    ) -> Result<(String, u64, u64, Option<RepairMode>), DomaticError> {
        catch_unwind(AssertUnwindSafe(|| compute_payload(spec))).unwrap_or_else(|_| {
            Err(DomaticError::BadRequest {
                message: "solver panicked on this instance".into(),
            })
        })
    }

    /// Renders the telemetry registry as Prometheus text exposition,
    /// refreshing point-in-time gauges (cache bytes/entries, in-flight)
    /// first so every scrape is current.
    pub fn metrics_text(&self) -> String {
        let t = domatic_telemetry::global();
        let (bytes, entries) = {
            let cache = lock(&self.cache);
            (cache.bytes() as u64, cache.len() as u64)
        };
        t.set_gauge("runtime.cache_bytes", bytes);
        t.set_gauge("server.cache_entries", entries);
        t.set_gauge("server.inflight", *lock(&self.inflight) as u64);
        domatic_telemetry::prometheus::render(&t.snapshot())
    }

    /// Renders the `profile` payload: the completed-request ring (oldest
    /// first) plus span aggregates, with fixed field order.
    fn render_profile(&self) -> String {
        let mut out = String::from("{\"ring\":[");
        for (i, rec) in self.tracer.ring_snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&rec.render_json());
        }
        out.push_str("],\"spans\":{");
        let snap = domatic_telemetry::global().snapshot();
        for (i, (path, stat)) in snap.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"total_ns\":{}}}",
                json_str(path),
                stat.count,
                stat.total_ns
            );
        }
        out.push_str("}}");
        out
    }

    fn respond(&self, sink: &ResponseSink, line: &str) {
        // A vanished client (broken pipe) must not take the server down;
        // the write result is deliberately discarded.
        let mut out = lock(sink);
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }

    fn respond_err(&self, sink: &ResponseSink, id: u64, err: &DomaticError) {
        bump(&self.counters.errors, "server.errors", 1);
        self.respond(sink, &protocol::err_line(id, err));
    }

    /// Serves JSON-lines over stdin/stdout until EOF or a `shutdown`
    /// request, then drains.
    pub fn serve_stdio(self: &Arc<Self>) {
        let sink: ResponseSink = Arc::new(Mutex::new(std::io::stdout()));
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if self.handle_line(&line, &sink) {
                break;
            }
        }
        self.drain();
    }

    /// Serves JSON-lines over TCP on an evented, sharded readiness
    /// architecture: this thread accepts and hands each connection to
    /// one of `cfg.shards` epoll event loops, which own their
    /// connections end to end (non-blocking reads, incremental framing,
    /// write-interest-driven flushing). Requests pipelined on one
    /// connection are answered in receipt order. Returns after a
    /// `shutdown` request has been received, in-flight work has drained,
    /// and every shard thread has flushed, closed its connections, and
    /// been joined — no detached threads outlive this call.
    pub fn serve_tcp(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        let shards = crate::event_loop::spawn_shards(self, self.cfg.shards.max(1))?;
        listener.set_nonblocking(true)?;
        let mut next = 0usize;
        while !self.shutdown_requested() {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    shards[next].shared.hand_off(stream);
                    next = (next + 1) % shards.len();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => {
                    crate::event_loop::finish_and_join(shards);
                    return Err(e);
                }
            }
        }
        // Close the listening socket before draining so new connects are
        // refused while in-flight work completes.
        drop(listener);
        self.drain();
        crate::event_loop::finish_and_join(shards);
        Ok(())
    }
}

/// The canonical cache/batch key: op-dependent so unrelated fields (a
/// solve seed, say) cannot split `bounds` requests into spurious misses.
fn solve_key(req: &Request, graph_hash: u64) -> u64 {
    let mut h = CanonicalHasher::new();
    h.write_u64(graph_hash);
    h.write_u64(req.b);
    match req.op {
        Op::Bounds => {
            h.write_str("bounds");
            h.write_u64(req.cfg.k as u64);
        }
        Op::Solve => {
            h.write_str("solve");
            h.write_str(&req.alg);
            h.write_u64(config_hash(&req.cfg));
        }
        Op::Adapt => {
            h.write_str("adapt");
            h.write_str(&req.alg);
            h.write_u64(config_hash(&req.cfg));
            h.write_str(&req.failures);
            h.write_u64(req.p.to_bits());
            h.write_u64(req.slots);
        }
        Op::Mutate | Op::Ping | Op::Stats | Op::Metrics | Op::Profile | Op::Shutdown => {
            unreachable!("not cacheable ops")
        }
    }
    h.finish()
}

/// The repair-hint subkey: which previous-version schedule a solve can
/// project through its delta. Same dimensions as the solve cache key
/// minus the graph (the hint map is already per-version).
fn hint_key(req: &Request) -> u64 {
    let mut h = CanonicalHasher::new();
    h.write_str(&req.alg);
    h.write_u64(config_hash(&req.cfg));
    h.write_u64(req.b);
    h.finish()
}

/// The per-request battery vector: uniform at `b`, with any `set_battery`
/// overrides pinned on top.
fn overlay_batteries(n: usize, b: u64, overrides: &BTreeMap<u32, u64>) -> Batteries {
    if overrides.is_empty() {
        return Batteries::uniform(n, b);
    }
    let mut values = vec![b; n];
    for (&node, &value) in overrides {
        if (node as usize) < n {
            values[node as usize] = value;
        }
    }
    Batteries::from_vec(values)
}

/// Renders a payload for one solve-shaped request, returning the payload
/// plus solve and render phase durations in µs and — for solves that
/// could attempt an incremental repair — the repair mode. Field order is
/// fixed (alphabetical) and every formatting choice is deterministic, so
/// equal requests render byte-identical payloads on any thread count —
/// the timing and repair mode are observational only and never feed the
/// payload (see `domatic_core::incremental` for why repaired and fresh
/// solutions are guaranteed equal).
fn compute_payload(spec: &JobSpec) -> Result<(String, u64, u64, Option<RepairMode>), DomaticError> {
    let g = &*spec.graph;
    let req = &spec.req;
    let batteries = overlay_batteries(g.n(), req.b, &spec.overrides);
    let t_start = Instant::now();
    let timed = |t_solve: Instant, payload: String, mode: Option<RepairMode>| {
        let render_us = t_solve.elapsed().as_micros() as u64;
        let solve_us = (t_start.elapsed().as_micros() as u64).saturating_sub(render_us);
        (payload, solve_us, render_us, mode)
    };
    match req.op {
        Op::Bounds => {
            let general = domatic_core::bounds::general_upper_bound(g, &batteries);
            let uniform = domatic_core::bounds::uniform_upper_bound(g, req.b);
            let ft = domatic_core::bounds::fault_tolerant_upper_bound(g, req.b, req.cfg.k.max(1));
            let t_solve = Instant::now();
            Ok(timed(t_solve, format!(
                "{{\"b\":{},\"ft\":{ft},\"general\":{general},\"graph\":{},\"graph_hash\":\"{:016x}\",\"k\":{},\"m\":{},\"n\":{},\"uniform\":{uniform}}}",
                req.b,
                json_str(&req.graph),
                spec.graph_hash,
                req.cfg.k.max(1),
                g.m(),
                g.n(),
            ), None))
        }
        Op::Solve => {
            let solver = make_solver(&req.alg)?;
            // Incremental path: if the graph's previous version solved
            // this same (alg, config, b) point, project that schedule
            // through the delta and certify it against the fresh solve.
            // The rendered schedule is always the fresh one — repair
            // mode is telemetry, never a payload branch.
            let hint = spec
                .repair
                .as_ref()
                .and_then(|rc| lock(&rc.prev_hints).get(&hint_key(req)).cloned());
            let (schedule, mode) = match (&spec.repair, hint) {
                (Some(rc), Some(prev)) => {
                    let out = repair_schedule(
                        g,
                        &batteries,
                        &prev,
                        &rc.delta,
                        solver.as_ref(),
                        &req.cfg,
                    )?;
                    (out.schedule, Some(out.mode))
                }
                _ => (solver.schedule(g, &batteries, &req.cfg)?, None),
            };
            // Remember this solution for the *next* version's repairs.
            lock(&spec.hints).insert(hint_key(req), schedule.clone());
            let tolerance = solver.tolerance(&req.cfg);
            let bound = solver.upper_bound(g, &batteries, &req.cfg);
            let t_solve = Instant::now();
            let mut sched_json = String::from("[");
            for (i, entry) in schedule.entries().iter().enumerate() {
                if i > 0 {
                    sched_json.push(',');
                }
                let _ = write!(sched_json, "[{},[", entry.duration);
                for (j, v) in entry.set.to_vec().into_iter().enumerate() {
                    if j > 0 {
                        sched_json.push(',');
                    }
                    let _ = write!(sched_json, "{v}");
                }
                sched_json.push_str("]]");
            }
            sched_json.push(']');
            Ok(timed(t_solve, format!(
                "{{\"alg\":{},\"b\":{},\"bound\":{bound},\"graph\":{},\"graph_hash\":\"{:016x}\",\"k\":{},\"lifetime\":{},\"n\":{},\"schedule\":{sched_json},\"seed\":{},\"steps\":{},\"tolerance\":{tolerance},\"trials\":{}}}",
                json_str(&req.alg),
                req.b,
                json_str(&req.graph),
                spec.graph_hash,
                req.cfg.k,
                schedule.lifetime(),
                g.n(),
                req.cfg.seed,
                schedule.num_steps(),
                req.cfg.trials,
            ), mode))
        }
        Op::Adapt => {
            let solver = make_solver(&req.alg)?;
            let models = FailureModel::parse(&req.failures, req.p).expect("validated at submit");
            let plan = FailurePlan::draw(&models, g.n(), req.slots, req.cfg.seed);
            let acfg = AdaptiveConfig {
                k: req.cfg.k,
                drift_tolerance: 2,
                max_retries: 2,
                max_slots: req.slots,
                max_replans: 64,
                record_curve: false,
            };
            let cmp =
                compare_static_adaptive(g, &batteries, solver.as_ref(), &req.cfg, &acfg, &plan)?;
            let t_solve = Instant::now();
            Ok(timed(t_solve, format!(
                "{{\"adaptive_lifetime\":{},\"alg\":{},\"b\":{},\"deaths\":{},\"failures\":{},\"graph\":{},\"p\":{:?},\"planned\":{},\"replans\":{},\"seed\":{},\"slots\":{},\"static_lifetime\":{}}}",
                cmp.adaptive.lifetime,
                json_str(&req.alg),
                req.b,
                cmp.adaptive.deaths,
                json_str(&req.failures),
                json_str(&req.graph),
                req.p,
                cmp.planned,
                cmp.adaptive.replans,
                req.cfg.seed,
                req.slots,
                cmp.static_run.lifetime,
            ), None))
        }
        Op::Mutate | Op::Ping | Op::Stats | Op::Metrics | Op::Profile | Op::Shutdown => {
            unreachable!("answered inline")
        }
    }
}

fn render_stats(s: &ServerStatsSnapshot) -> String {
    format!(
        "{{\"batch_joined\":{},\"cache_bytes\":{},\"cache_entries\":{},\"cache_evictions\":{},\"cache_hits\":{},\"cache_misses\":{},\"connections\":{},\"deadline_expired\":{},\"errors\":{},\"inflight\":{},\"lineage_invalidations\":{},\"mutations\":{},\"overloads\":{},\"repair_fallbacks\":{},\"repairs\":{},\"requests\":{},\"shed_join\":{},\"shed_miss\":{},\"solves\":{}}}",
        s.batch_joined,
        s.cache_bytes,
        s.cache_entries,
        s.cache_evictions,
        s.cache_hits,
        s.cache_misses,
        s.connections,
        s.deadline_expired,
        s.errors,
        s.inflight,
        s.lineage_invalidations,
        s.mutations,
        s.overloads,
        s.repair_fallbacks,
        s.repairs,
        s.requests,
        s.shed_join,
        s.shed_miss,
        s.solves,
    )
}

fn json_str(s: &str) -> String {
    domatic_telemetry::json::Json::Str(s.to_string()).render()
}
