//! The LRU solve cache: canonical key → rendered result bytes.
//!
//! Values are the *exact* response payloads the server would render for
//! a fresh solve, stored as `Arc<str>` so a hit hands back the same
//! bytes without copying. Capacity is counted in payload bytes (the
//! quantity that actually bounds memory), not entries; recency is a
//! monotone tick per entry and eviction removes the smallest tick. That
//! makes eviction a linear scan — O(entries) — which is the right trade
//! for a cache whose entries are whole solve results (hundreds, not
//! millions) and keeps the structure a single `HashMap`.
//!
//! ## Lineage invalidation
//!
//! Every entry records the content hash of the graph version it was
//! solved against. When a graph mutates, the server retires the
//! superseded version: matching entries are dropped and the hash joins
//! a tombstone set so a solve that was already in flight when the
//! mutation landed cannot re-insert a stale ancestor entry afterwards.
//! Only the mutated lineage is touched — entries for other graphs
//! survive, which is the whole point over a full flush. Hashes are
//! content-addressed, so a mutation chain that returns a graph to an
//! earlier content state *revives* that hash (the server passes it
//! back through [`SolveCache::revive_graphs`]): any entry or in-flight
//! insert under it describes byte-identical content and is safe to
//! serve again. The tombstone set grows by at most one hash per
//! mutation — a few dozen bytes per churn event, negligible next to
//! the payloads.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

struct Entry {
    payload: Arc<str>,
    last_used: u64,
    /// Content hash of the graph version this payload was solved
    /// against; the handle lineage invalidation retires by.
    graph_hash: u64,
}

/// A byte-bounded LRU map from canonical solve key to rendered payload.
pub struct SolveCache {
    entries: HashMap<u64, Entry>,
    capacity_bytes: usize,
    bytes: usize,
    tick: u64,
    /// Graph versions superseded by a mutation: inserts for these are
    /// refused so late-finishing solves cannot resurrect retired state.
    retired: HashSet<u64>,
}

impl SolveCache {
    /// An empty cache bounded at `capacity_bytes` of payload.
    pub fn new(capacity_bytes: usize) -> Self {
        SolveCache {
            entries: HashMap::new(),
            capacity_bytes,
            bytes: 0,
            tick: 0,
            retired: HashSet::new(),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<Arc<str>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.payload)
        })
    }

    /// Inserts `key → payload` for a solve against graph version
    /// `graph_hash`, evicting least-recently-used entries until the byte
    /// budget holds again. Returns how many entries were evicted. A
    /// payload larger than the whole budget is not cached at all (it
    /// would only evict everything and then itself), and an insert for a
    /// retired graph version is refused — the solve raced a mutation and
    /// its result must not outlive the version it describes.
    pub fn insert(&mut self, key: u64, graph_hash: u64, payload: Arc<str>) -> u64 {
        if payload.len() > self.capacity_bytes || self.retired.contains(&graph_hash) {
            return 0;
        }
        self.tick += 1;
        if let Some(old) = self.entries.insert(
            key,
            Entry {
                payload: Arc::clone(&payload),
                last_used: self.tick,
                graph_hash,
            },
        ) {
            self.bytes -= old.payload.len();
        }
        self.bytes += payload.len();
        let mut evicted = 0;
        while self.bytes > self.capacity_bytes {
            let oldest = self
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("over budget implies an evictable entry");
            let gone = self.entries.remove(&oldest).expect("key from scan");
            self.bytes -= gone.payload.len();
            evicted += 1;
        }
        evicted
    }

    /// Retires graph versions superseded by a mutation: drops every
    /// entry solved against them and tombstones the hashes against
    /// in-flight re-inserts. Returns how many entries were dropped.
    pub fn retire_graphs(&mut self, hashes: &[u64]) -> u64 {
        self.retired.extend(hashes.iter().copied());
        let doomed: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| hashes.contains(&e.graph_hash))
            .map(|(k, _)| *k)
            .collect();
        for k in &doomed {
            let gone = self.entries.remove(k).expect("key from scan");
            self.bytes -= gone.payload.len();
        }
        doomed.len() as u64
    }

    /// Un-tombstones graph versions that are live again — a mutation
    /// chain produced content identical to an earlier version, so its
    /// (content-addressed, byte-identical) entries are valid once more.
    pub fn revive_graphs(&mut self, hashes: &[u64]) {
        for h in hashes {
            self.retired.remove(h);
        }
    }

    /// The distinct graph hashes current entries were solved against,
    /// sorted. Test introspection for the lineage-invalidation
    /// invariant; not part of the serving surface.
    pub fn graph_hashes(&self) -> Vec<u64> {
        let mut hashes: Vec<u64> = self.entries.values().map(|e| e.graph_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        hashes
    }

    /// Total payload bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: u64 = 0xabcd;

    fn payload(n: usize) -> Arc<str> {
        Arc::from("x".repeat(n))
    }

    #[test]
    fn hit_returns_the_stored_bytes() {
        let mut c = SolveCache::new(100);
        c.insert(1, G, Arc::from("result-one"));
        assert_eq!(c.get(1).as_deref(), Some("result-one"));
        assert_eq!(c.get(2), None);
        assert_eq!(c.bytes(), 10);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = SolveCache::new(30);
        c.insert(1, G, payload(10));
        c.insert(2, G, payload(10));
        c.insert(3, G, payload(10));
        // Touch 1 so 2 becomes the LRU entry.
        c.get(1);
        let evicted = c.insert(4, G, payload(10));
        assert_eq!(evicted, 1);
        assert!(c.get(2).is_none(), "LRU entry should be gone");
        assert!(c.get(1).is_some() && c.get(3).is_some() && c.get(4).is_some());
        assert_eq!(c.bytes(), 30);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut c = SolveCache::new(50);
        c.insert(1, G, payload(20));
        c.insert(1, G, payload(30));
        assert_eq!(c.bytes(), 30);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn oversized_payload_is_not_cached() {
        let mut c = SolveCache::new(10);
        c.insert(1, G, payload(5));
        assert_eq!(c.insert(2, G, payload(11)), 0);
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some(), "existing entries survive the refusal");
    }

    #[test]
    fn eviction_can_cascade() {
        let mut c = SolveCache::new(20);
        c.insert(1, G, payload(10));
        c.insert(2, G, payload(10));
        assert_eq!(c.insert(3, G, payload(20)), 2);
        assert_eq!(c.len(), 1);
        assert!(c.get(3).is_some());
    }

    #[test]
    fn retire_drops_only_the_named_lineage() {
        let mut c = SolveCache::new(100);
        c.insert(1, 0xa, payload(10));
        c.insert(2, 0xa, payload(10));
        c.insert(3, 0xb, payload(10));
        assert_eq!(c.retire_graphs(&[0xa]), 2);
        assert!(c.get(1).is_none() && c.get(2).is_none());
        assert_eq!(c.get(3).as_deref(), Some(&*"x".repeat(10)));
        assert_eq!(c.bytes(), 10);
        assert_eq!(c.graph_hashes(), vec![0xb]);
    }

    #[test]
    fn retired_graphs_refuse_late_inserts_until_revived() {
        let mut c = SolveCache::new(100);
        c.retire_graphs(&[0xa]);
        c.insert(1, 0xa, payload(10));
        assert!(c.get(1).is_none(), "stale in-flight insert refused");
        c.insert(2, 0xb, payload(10));
        assert!(c.get(2).is_some(), "other lineages unaffected");
        // A mutation chain that returns to this content revives it.
        c.revive_graphs(&[0xa]);
        c.insert(3, 0xa, payload(10));
        assert!(c.get(3).is_some());
    }
}
