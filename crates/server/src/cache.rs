//! The LRU solve cache: canonical key → rendered result bytes.
//!
//! Values are the *exact* response payloads the server would render for
//! a fresh solve, stored as `Arc<str>` so a hit hands back the same
//! bytes without copying. Capacity is counted in payload bytes (the
//! quantity that actually bounds memory), not entries; recency is a
//! monotone tick per entry and eviction removes the smallest tick. That
//! makes eviction a linear scan — O(entries) — which is the right trade
//! for a cache whose entries are whole solve results (hundreds, not
//! millions) and keeps the structure a single `HashMap`.

use std::collections::HashMap;
use std::sync::Arc;

struct Entry {
    payload: Arc<str>,
    last_used: u64,
}

/// A byte-bounded LRU map from canonical solve key to rendered payload.
pub struct SolveCache {
    entries: HashMap<u64, Entry>,
    capacity_bytes: usize,
    bytes: usize,
    tick: u64,
}

impl SolveCache {
    /// An empty cache bounded at `capacity_bytes` of payload.
    pub fn new(capacity_bytes: usize) -> Self {
        SolveCache {
            entries: HashMap::new(),
            capacity_bytes,
            bytes: 0,
            tick: 0,
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<Arc<str>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.payload)
        })
    }

    /// Inserts `key → payload`, evicting least-recently-used entries
    /// until the byte budget holds again. Returns how many entries were
    /// evicted. A payload larger than the whole budget is not cached at
    /// all (it would only evict everything and then itself).
    pub fn insert(&mut self, key: u64, payload: Arc<str>) -> u64 {
        if payload.len() > self.capacity_bytes {
            return 0;
        }
        self.tick += 1;
        if let Some(old) = self.entries.insert(
            key,
            Entry {
                payload: Arc::clone(&payload),
                last_used: self.tick,
            },
        ) {
            self.bytes -= old.payload.len();
        }
        self.bytes += payload.len();
        let mut evicted = 0;
        while self.bytes > self.capacity_bytes {
            let oldest = self
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("over budget implies an evictable entry");
            let gone = self.entries.remove(&oldest).expect("key from scan");
            self.bytes -= gone.payload.len();
            evicted += 1;
        }
        evicted
    }

    /// Total payload bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Arc<str> {
        Arc::from("x".repeat(n))
    }

    #[test]
    fn hit_returns_the_stored_bytes() {
        let mut c = SolveCache::new(100);
        c.insert(1, Arc::from("result-one"));
        assert_eq!(c.get(1).as_deref(), Some("result-one"));
        assert_eq!(c.get(2), None);
        assert_eq!(c.bytes(), 10);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = SolveCache::new(30);
        c.insert(1, payload(10));
        c.insert(2, payload(10));
        c.insert(3, payload(10));
        // Touch 1 so 2 becomes the LRU entry.
        c.get(1);
        let evicted = c.insert(4, payload(10));
        assert_eq!(evicted, 1);
        assert!(c.get(2).is_none(), "LRU entry should be gone");
        assert!(c.get(1).is_some() && c.get(3).is_some() && c.get(4).is_some());
        assert_eq!(c.bytes(), 30);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut c = SolveCache::new(50);
        c.insert(1, payload(20));
        c.insert(1, payload(30));
        assert_eq!(c.bytes(), 30);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn oversized_payload_is_not_cached() {
        let mut c = SolveCache::new(10);
        c.insert(1, payload(5));
        assert_eq!(c.insert(2, payload(11)), 0);
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some(), "existing entries survive the refusal");
    }

    #[test]
    fn eviction_can_cascade() {
        let mut c = SolveCache::new(20);
        c.insert(1, payload(10));
        c.insert(2, payload(10));
        assert_eq!(c.insert(3, payload(20)), 2);
        assert_eq!(c.len(), 1);
        assert!(c.get(3).is_some());
    }
}
