//! Integration tests for the serve runtime: batching fan-out, cache
//! identity, deadlines, backpressure, drain, and the TCP transport.
//!
//! Most tests drive `handle_line` directly with an in-memory sink — the
//! transport loops are thin wrappers around it — and one test runs the
//! real TCP path end to end.

use domatic_graph::Graph;
use domatic_server::server::ResponseSink;
use domatic_server::{Server, ServerConfig};
use domatic_telemetry::json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The CI smoke topology: a ring with skip-3 chords, solvable at b ≥ 1.
fn ring_graph(n: u32) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n)
        .flat_map(|i| [(i, (i + 1) % n), (i, (i + 3) % n)])
        .collect();
    Graph::from_edges(n as usize, &edges)
}

fn make_server(cfg: ServerConfig) -> Arc<Server> {
    let server = Server::new(cfg);
    server.add_graph("ring", ring_graph(24));
    server.add_graph("ring2", ring_graph(30));
    Arc::new(server)
}

fn sink() -> (Arc<Mutex<Vec<u8>>>, ResponseSink) {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let dyn_sink: ResponseSink = buf.clone();
    (buf, dyn_sink)
}

fn lines(buf: &Arc<Mutex<Vec<u8>>>) -> Vec<String> {
    let bytes = buf.lock().unwrap();
    String::from_utf8(bytes.clone())
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

/// Polls until `n` response lines have arrived (jobs are asynchronous).
fn wait_lines(buf: &Arc<Mutex<Vec<u8>>>, n: usize) -> Vec<String> {
    let start = Instant::now();
    loop {
        let have = lines(buf);
        if have.len() >= n {
            return have;
        }
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "timed out at {} of {n} responses: {have:?}",
            have.len()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The rendered `result` payload of a response line (panics on errors).
fn result_of(line: &str) -> String {
    let prefix = line
        .find("\"result\":")
        .unwrap_or_else(|| panic!("not an ok response: {line}"));
    line[prefix + "\"result\":".len()..line.len() - 1].to_string()
}

fn id_of(line: &str) -> u64 {
    let v = json::parse(line).unwrap();
    u64::try_from(v.get("id").unwrap().as_int().unwrap()).unwrap()
}

fn error_kind(line: &str) -> String {
    let v = json::parse(line).unwrap();
    assert_eq!(v.get("ok"), Some(&json::Json::Bool(false)), "{line}");
    v.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(|k| k.as_str())
        .unwrap()
        .to_string()
}

#[test]
fn batched_duplicates_run_exactly_one_solve_and_fan_out_identically() {
    let server = make_server(ServerConfig {
        capacity: 8,
        batch_window: Duration::from_millis(300),
        cache_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    let (buf, sink) = sink();
    for id in 1..=4u64 {
        let line = format!(
            "{{\"id\":{id},\"op\":\"solve\",\"graph\":\"ring\",\"alg\":\"greedy\",\"b\":3}}"
        );
        assert!(!server.handle_line(&line, &sink));
    }
    let responses = wait_lines(&buf, 4);
    let mut ids: Vec<u64> = responses.iter().map(|l| id_of(l)).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 2, 3, 4]);
    let payloads: Vec<String> = responses.iter().map(|l| result_of(l)).collect();
    for p in &payloads[1..] {
        assert_eq!(*p, payloads[0], "fan-out must be byte-identical");
    }
    let stats = server.stats();
    assert_eq!(stats.solves, 1, "4 coalesced requests, 1 underlying solve");
    assert_eq!(stats.batch_joined, 3);
    assert_eq!(stats.cache_misses, 1, "joiners never count as misses");
}

#[test]
fn cached_response_is_byte_identical_to_the_uncached_one() {
    let server = make_server(ServerConfig {
        capacity: 8,
        batch_window: Duration::ZERO,
        cache_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    let (buf, sink) = sink();
    let line = r#"{"id":9,"op":"solve","graph":"ring","alg":"uniform","b":2,"seed":5,"trials":4}"#;
    server.handle_line(line, &sink);
    let first = wait_lines(&buf, 1)[0].clone();
    server.handle_line(line, &sink);
    let both = wait_lines(&buf, 2);
    assert_eq!(both[1], first, "cache hit must replay the exact bytes");
    let stats = server.stats();
    assert_eq!(stats.solves, 1);
    assert_eq!(stats.cache_hits, 1);
}

#[test]
fn batched_and_unbatched_servers_render_the_same_bytes() {
    // Same request through a batching server and through a cold
    // zero-window server: the payload must not depend on either.
    let req = r#"{"id":1,"op":"solve","graph":"ring","alg":"general","b":4,"seed":3}"#;
    let batching = make_server(ServerConfig {
        capacity: 8,
        batch_window: Duration::from_millis(100),
        cache_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    let (buf_a, sink_a) = sink();
    batching.handle_line(req, &sink_a);
    batching.handle_line(req, &sink_a);
    let batched = wait_lines(&buf_a, 2);

    let cold = make_server(ServerConfig {
        capacity: 8,
        batch_window: Duration::ZERO,
        cache_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    let (buf_b, sink_b) = sink();
    cold.handle_line(req, &sink_b);
    let unbatched = wait_lines(&buf_b, 1);

    assert_eq!(batched[0], unbatched[0]);
    assert_eq!(batched[1], unbatched[0]);
    assert_eq!(batching.stats().solves, 1);
    assert_eq!(cold.stats().solves, 1);
}

#[test]
fn expired_deadline_gets_a_typed_error_and_the_server_keeps_serving() {
    let server = make_server(ServerConfig {
        capacity: 8,
        batch_window: Duration::ZERO,
        cache_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    let (buf, sink) = sink();
    // deadline_ms 0 expires the moment the job is dequeued.
    server.handle_line(
        r#"{"id":1,"op":"solve","graph":"ring","b":3,"deadline_ms":0}"#,
        &sink,
    );
    let first = wait_lines(&buf, 1);
    assert_eq!(error_kind(&first[0]), "deadline");

    // The expired request skipped its solve entirely…
    assert_eq!(server.stats().solves, 0);
    assert_eq!(server.stats().deadline_expired, 1);

    // …and the server still serves the next request normally.
    server.handle_line(r#"{"id":2,"op":"solve","graph":"ring","b":3}"#, &sink);
    let both = wait_lines(&buf, 2);
    assert!(both[1].contains("\"ok\":true"), "{}", both[1]);
}

#[test]
fn admission_beyond_capacity_is_a_typed_overloaded_error() {
    let server = make_server(ServerConfig {
        capacity: 1,
        batch_window: Duration::from_millis(400),
        cache_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    let (buf, sink) = sink();
    // First request occupies the single in-flight slot for the whole
    // batching window.
    server.handle_line(r#"{"id":1,"op":"solve","graph":"ring","b":3}"#, &sink);
    // A different key cannot join the open batch and must be rejected
    // synchronously at admission.
    server.handle_line(
        r#"{"id":2,"op":"solve","graph":"ring","b":3,"seed":77}"#,
        &sink,
    );
    // An identical key coalesces instead of being rejected.
    server.handle_line(r#"{"id":3,"op":"solve","graph":"ring","b":3}"#, &sink);

    let responses = wait_lines(&buf, 3);
    let overloaded: Vec<&String> = responses
        .iter()
        .filter(|l| l.contains("\"ok\":false"))
        .collect();
    assert_eq!(overloaded.len(), 1);
    assert_eq!(id_of(overloaded[0]), 2);
    assert_eq!(error_kind(overloaded[0]), "overloaded");
    assert_eq!(server.stats().overloads, 1);
    assert_eq!(server.stats().batch_joined, 1);
}

#[test]
fn bounds_and_adapt_ops_serve_and_cache() {
    let server = make_server(ServerConfig {
        capacity: 8,
        batch_window: Duration::ZERO,
        cache_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    let (buf, sink) = sink();
    let bounds = r#"{"id":1,"op":"bounds","graph":"ring","b":3}"#;
    server.handle_line(bounds, &sink);
    // Wait for the first result to land in the cache before duplicating,
    // so the duplicate is a guaranteed hit (not a batch join).
    wait_lines(&buf, 1);
    server.handle_line(bounds, &sink);
    let adapt = r#"{"id":2,"op":"adapt","graph":"ring","alg":"greedy","b":3,"failures":"crash","p":0.05,"slots":200}"#;
    server.handle_line(adapt, &sink);
    let responses = wait_lines(&buf, 3);
    for line in &responses {
        assert!(line.contains("\"ok\":true"), "{line}");
    }
    let bounds_payload = responses
        .iter()
        .find(|l| id_of(l) == 1)
        .map(|l| result_of(l))
        .unwrap();
    let v = json::parse(&bounds_payload).unwrap();
    assert!(v.get("general").unwrap().as_int().unwrap() > 0);
    let adapt_payload = responses
        .iter()
        .find(|l| id_of(l) == 2)
        .map(|l| result_of(l))
        .unwrap();
    let v = json::parse(&adapt_payload).unwrap();
    assert!(v.get("planned").unwrap().as_int().unwrap() > 0);
    assert!(server.stats().cache_hits >= 1, "duplicate bounds must hit");
}

#[test]
fn bad_requests_get_typed_errors_without_occupying_capacity() {
    let server = make_server(ServerConfig::default());
    let (buf, sink) = sink();
    server.handle_line(r#"{"id":1,"op":"solve","graph":"nope","b":3}"#, &sink);
    server.handle_line(
        r#"{"id":2,"op":"solve","graph":"ring","alg":"nope"}"#,
        &sink,
    );
    server.handle_line("garbage", &sink);
    let responses = wait_lines(&buf, 3);
    let mut kinds: Vec<String> = responses.iter().map(|l| error_kind(l)).collect();
    kinds.sort();
    assert_eq!(
        kinds,
        vec!["bad_request", "unknown_graph", "unknown_solver"]
    );
    assert_eq!(server.stats().inflight, 0);
    assert_eq!(server.stats().solves, 0);
}

#[test]
fn hops_request_serves_valid_d_hop_schedules_and_adapt_rejects_it() {
    let server = make_server(ServerConfig {
        capacity: 8,
        batch_window: Duration::ZERO,
        cache_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    let (buf, sink) = sink();
    server.handle_line(
        r#"{"id":1,"op":"solve","graph":"ring","alg":"greedy","b":3,"hops":2}"#,
        &sink,
    );
    server.handle_line(
        r#"{"id":2,"op":"solve","graph":"ring","alg":"greedy","b":3}"#,
        &sink,
    );
    server.handle_line(
        r#"{"id":3,"op":"adapt","graph":"ring","alg":"greedy","b":3,"failures":"iid","p":0.1,"slots":4,"hops":2}"#,
        &sink,
    );
    let responses = wait_lines(&buf, 3);

    // The hops>1 refusal is a typed `config` error carried on the wire
    // (the solver configuration is unsupported for `adapt`), not a
    // generic bad request.
    let adapt_line = responses.iter().find(|l| id_of(l) == 3).unwrap();
    assert_eq!(error_kind(adapt_line), "config");
    assert!(
        adapt_line.contains("adapt does not support hops > 1"),
        "{adapt_line}"
    );

    let payload_2hop = result_of(responses.iter().find(|l| id_of(l) == 1).unwrap());
    let payload_1hop = result_of(responses.iter().find(|l| id_of(l) == 2).unwrap());
    assert_ne!(
        payload_2hop, payload_1hop,
        "hops must participate in the solve, not just the cache key"
    );

    // Every slot of the 2-hop response must be a 2-hop dominating set of
    // the *original* ring — the server solves on the power graph but the
    // schedule is stated in terms of base-graph nodes.
    let g = ring_graph(24);
    let v = json::parse(&payload_2hop).unwrap();
    assert!(v.get("lifetime").unwrap().as_int().unwrap() > 0);
    let Some(json::Json::Arr(entries)) = v.get("schedule") else {
        panic!("missing schedule array: {payload_2hop}");
    };
    assert!(!entries.is_empty());
    for entry in entries {
        let json::Json::Arr(pair) = entry else {
            panic!("entry is not [duration, nodes]: {entry:?}");
        };
        let json::Json::Arr(nodes) = &pair[1] else {
            panic!("nodes is not an array: {entry:?}");
        };
        let set = domatic_graph::NodeSet::from_iter(
            g.n(),
            nodes
                .iter()
                .map(|x| u32::try_from(x.as_int().unwrap()).unwrap()),
        );
        assert!(
            domatic_graph::domination::is_d_hop_dominating_set(&g, &set, 2),
            "slot is not 2-hop dominating: {nodes:?}"
        );
    }
}

#[test]
fn default_solver_responses_are_pinned_byte_for_byte() {
    // These are the exact bytes the server produced for default-solver
    // requests BEFORE the budget-aware Solver redesign (captured from the
    // seed build). The redesign must not change a single byte of them:
    // cached entries written by an old process must replay identically,
    // and clients diff responses across versions.
    let pins = [
        (
            r#"{"id":1,"op":"solve","graph":"ring","b":3}"#,
            r#"{"id":1,"ok":true,"result":{"alg":"uniform","b":3,"bound":15,"graph":"ring","graph_hash":"a23199d0c97326dd","k":1,"lifetime":3,"n":24,"schedule":[[3,[0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23]]],"seed":0,"steps":1,"tolerance":1,"trials":8}}"#,
        ),
        (
            r#"{"id":2,"op":"solve","graph":"ring","alg":"greedy","b":2,"seed":4,"trials":3}"#,
            r#"{"id":2,"ok":true,"result":{"alg":"greedy","b":2,"bound":10,"graph":"ring","graph_hash":"a23199d0c97326dd","k":1,"lifetime":6,"n":24,"schedule":[[2,[0,5,10,14,15,19]],[2,[1,6,11,16,17,20]],[2,[2,7,12,13,18,21]]],"seed":4,"steps":3,"tolerance":1,"trials":3}}"#,
        ),
        (
            r#"{"id":3,"op":"bounds","graph":"ring","b":3}"#,
            r#"{"id":3,"ok":true,"result":{"b":3,"ft":15,"general":15,"graph":"ring","graph_hash":"a23199d0c97326dd","k":1,"m":48,"n":24,"uniform":15}}"#,
        ),
    ];
    let server = make_server(ServerConfig {
        capacity: 8,
        batch_window: Duration::ZERO,
        cache_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    let (buf, sink) = sink();
    for (req, _) in &pins {
        server.handle_line(req, &sink);
    }
    let responses = wait_lines(&buf, pins.len());
    for (req, want) in &pins {
        let got = responses
            .iter()
            .find(|l| id_of(l) == id_of(want))
            .unwrap_or_else(|| panic!("no response for {req}"));
        assert_eq!(got, want, "response bytes drifted for {req}");
    }
}

#[test]
fn solver_alias_and_budget_ms_drive_the_anytime_solvers() {
    let server = make_server(ServerConfig {
        capacity: 8,
        batch_window: Duration::ZERO,
        cache_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    let (buf, sink) = sink();
    // The anytime solvers are reachable through the new `solver` field…
    server.handle_line(
        r#"{"id":1,"op":"solve","graph":"ring","solver":"tabu","b":3,"trials":2}"#,
        &sink,
    );
    server.handle_line(
        r#"{"id":2,"op":"solve","graph":"ring","solver":"portfolio","b":3,"trials":2}"#,
        &sink,
    );
    // …and the greedy row they must never lose to.
    server.handle_line(
        r#"{"id":3,"op":"solve","graph":"ring","alg":"greedy","b":3}"#,
        &sink,
    );
    let responses = wait_lines(&buf, 3);
    let lifetime_of = |id: u64| {
        let line = responses.iter().find(|l| id_of(l) == id).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
        json::parse(&result_of(line))
            .unwrap()
            .get("lifetime")
            .unwrap()
            .as_int()
            .unwrap()
    };
    let greedy = lifetime_of(3);
    assert!(lifetime_of(1) >= greedy, "tabu lost to greedy");
    assert!(lifetime_of(2) >= greedy, "portfolio lost to greedy");

    // `budget_ms` is part of the solve identity: the same request with
    // and without a budget may not share a cache entry.
    let solves_before = server.stats().solves;
    server.handle_line(
        r#"{"id":4,"op":"solve","graph":"ring","solver":"tabu","b":3,"trials":2}"#,
        &sink,
    );
    wait_lines(&buf, 4);
    assert_eq!(
        server.stats().solves,
        solves_before,
        "exact repeat must hit"
    );
    server.handle_line(
        r#"{"id":5,"op":"solve","graph":"ring","solver":"tabu","b":3,"trials":2,"budget_ms":10000}"#,
        &sink,
    );
    wait_lines(&buf, 5);
    assert_eq!(
        server.stats().solves,
        solves_before + 1,
        "budgeted request must key its own solve"
    );
}

#[test]
fn unknown_solver_names_are_rejected_typed_via_either_field() {
    let server = make_server(ServerConfig::default());
    let (buf, sink) = sink();
    server.handle_line(
        r#"{"id":1,"op":"solve","graph":"ring","solver":"quantum"}"#,
        &sink,
    );
    server.handle_line(
        r#"{"id":2,"op":"solve","graph":"ring","alg":"greedy","solver":"tabu"}"#,
        &sink,
    );
    let responses = wait_lines(&buf, 2);
    let kind_of = |id: u64| error_kind(responses.iter().find(|l| id_of(l) == id).unwrap());
    assert_eq!(kind_of(1), "unknown_solver");
    assert_eq!(kind_of(2), "bad_request", "alg/solver disagreement");
    assert_eq!(server.stats().solves, 0);
}

#[test]
fn shutdown_drains_and_rejects_new_work() {
    let server = make_server(ServerConfig {
        capacity: 8,
        batch_window: Duration::from_millis(50),
        cache_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    let (buf, sink) = sink();
    server.handle_line(r#"{"id":1,"op":"solve","graph":"ring","b":3}"#, &sink);
    assert!(server.handle_line(r#"{"id":2,"op":"shutdown"}"#, &sink));
    // Admission is closed from the moment shutdown was seen.
    server.handle_line(
        r#"{"id":3,"op":"solve","graph":"ring","b":3,"seed":9}"#,
        &sink,
    );
    server.drain();
    let responses = wait_lines(&buf, 3);
    assert_eq!(server.stats().inflight, 0);
    let in_flight_done = responses
        .iter()
        .any(|l| id_of(l) == 1 && l.contains("\"ok\":true"));
    assert!(
        in_flight_done,
        "in-flight work completes during drain: {responses:?}"
    );
    let rejected = responses
        .iter()
        .find(|l| id_of(l) == 3)
        .expect("post-shutdown request answered");
    assert_eq!(error_kind(rejected), "shutting_down");
}

#[test]
fn tcp_transport_serves_concurrent_mixed_clients_end_to_end() {
    let server = make_server(ServerConfig {
        capacity: 16,
        batch_window: Duration::from_millis(5),
        cache_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let srv = Arc::clone(&server);
    let serve_thread = std::thread::spawn(move || srv.serve_tcp(listener).unwrap());

    let mut clients = Vec::new();
    for c in 0..4u64 {
        clients.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut stream = stream;
            let n = 6u64;
            for i in 0..n {
                // A mixed pipelined workload with deliberate duplicates
                // across clients (seed i % 2).
                let id = c * 100 + i;
                let line = if i % 3 == 0 {
                    format!("{{\"id\":{id},\"op\":\"bounds\",\"graph\":\"ring\",\"b\":3}}")
                } else {
                    format!(
                        "{{\"id\":{id},\"op\":\"solve\",\"graph\":\"ring2\",\"alg\":\"greedy\",\"b\":2,\"seed\":{}}}",
                        i % 2
                    )
                };
                writeln!(stream, "{line}").unwrap();
            }
            stream.flush().unwrap();
            let mut got = Vec::new();
            for _ in 0..n {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                assert!(line.contains("\"ok\":true"), "{line}");
                got.push(id_of(&line));
            }
            got.sort_unstable();
            let want: Vec<u64> = (0..n).map(|i| c * 100 + i).collect();
            assert_eq!(got, want, "every pipelined request answered exactly once");
        }));
    }
    for c in clients {
        c.join().unwrap();
    }

    let stats = server.stats();
    assert_eq!(stats.errors, 0);
    assert!(
        stats.cache_hits + stats.batch_joined > 0,
        "duplicates must coalesce or hit: {stats:?}"
    );
    assert!(
        stats.solves < 24,
        "24 requests must not mean 24 solves: {stats:?}"
    );

    // Shut the server down over the wire and join the serve loop.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;
    writeln!(stream, "{{\"id\":999,\"op\":\"shutdown\"}}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("draining"), "{line}");
    serve_thread.join().unwrap();
}

#[test]
fn stats_op_reports_counters_inline() {
    let server = make_server(ServerConfig::default());
    let (buf, sink) = sink();
    server.handle_line(r#"{"id":1,"op":"ping"}"#, &sink);
    server.handle_line(r#"{"id":2,"op":"stats"}"#, &sink);
    let responses = wait_lines(&buf, 2);
    assert!(responses[0].contains("\"pong\":true"));
    let v = json::parse(&result_of(&responses[1])).unwrap();
    assert_eq!(v.get("requests").unwrap().as_int().unwrap(), 2);
}

/// A `Write` adapter over a shared byte buffer, used as an access-log
/// sink in tests.
struct SharedLog(Arc<Mutex<Vec<u8>>>);

impl Write for SharedLog {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn access_log_traces_the_lifecycle_without_changing_response_bytes() {
    let requests = [
        r#"{"id":1,"op":"solve","graph":"ring","alg":"greedy","b":3,"seed":41}"#,
        r#"{"id":2,"op":"bounds","graph":"ring","b":3,"k":2}"#,
        r#"{"id":1,"op":"solve","graph":"ring","alg":"greedy","b":3,"seed":41}"#, // cache hit
        r#"{"id":3,"op":"solve","graph":"nope","b":3}"#,                          // shed
    ];
    let run = |with_log: bool| -> (Vec<String>, Vec<String>) {
        let server = make_server(ServerConfig {
            capacity: 8,
            batch_window: Duration::ZERO,
            cache_bytes: 1 << 20,
            ..ServerConfig::default()
        });
        let log_buf = Arc::new(Mutex::new(Vec::new()));
        if with_log {
            server.set_access_log(Box::new(SharedLog(Arc::clone(&log_buf))));
        }
        let (buf, sink) = sink();
        for (i, line) in requests.iter().enumerate() {
            server.handle_line(line, &sink);
            if i < 2 {
                // Let the first two land (the third must be a cache hit).
                wait_lines(&buf, i + 1);
            }
        }
        let mut responses = wait_lines(&buf, requests.len());
        responses.sort();
        let log_lines: Vec<String> = String::from_utf8(log_buf.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        (responses, log_lines)
    };

    let (traced, log) = run(true);
    let (untraced, no_log) = run(false);
    // The tracing-never-changes-response-bytes invariant.
    assert_eq!(
        traced, untraced,
        "responses must be byte-identical with tracing on vs off"
    );
    assert!(no_log.is_empty());
    assert!(!log.is_empty(), "access log captured events");

    // Every log line is valid JSON; timestamps are monotone per trace.
    let mut last_t: std::collections::HashMap<i128, i128> = std::collections::HashMap::new();
    let mut events_seen = std::collections::HashSet::new();
    for line in &log {
        let v = json::parse(line).unwrap_or_else(|e| panic!("invalid log line {line}: {e}"));
        let trace = v.get("trace").and_then(|t| t.as_int()).unwrap();
        let t_us = v.get("t_us").and_then(|t| t.as_int()).unwrap();
        let prev = last_t.insert(trace, t_us).unwrap_or(0);
        assert!(
            t_us >= prev,
            "timestamps regress within trace {trace}: {line}"
        );
        events_seen.insert(v.get("event").and_then(|e| e.as_str()).unwrap().to_string());
    }
    for required in [
        "received",
        "admitted",
        "cache_miss",
        "cache_hit",
        "solve_start",
        "solve_end",
        "rendered",
        "written",
        "shed",
    ] {
        assert!(
            events_seen.contains(required),
            "missing event {required}: {log:?}"
        );
    }
    // No trace id ever appears in a response line.
    for line in &traced {
        assert!(
            !line.contains("\"trace\""),
            "trace leaked into response: {line}"
        );
    }
}

#[test]
fn metrics_op_returns_valid_prometheus_exposition() {
    let server = make_server(ServerConfig {
        capacity: 8,
        batch_window: Duration::ZERO,
        cache_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    let (buf, sink) = sink();
    server.handle_line(
        r#"{"id":1,"op":"solve","graph":"ring","alg":"greedy","b":3,"seed":7}"#,
        &sink,
    );
    wait_lines(&buf, 1);
    server.handle_line(r#"{"id":2,"op":"metrics"}"#, &sink);
    let responses = wait_lines(&buf, 2);
    let metrics_line = responses.iter().find(|l| id_of(l) == 2).unwrap();
    let v = json::parse(&result_of(metrics_line)).unwrap();
    let text = v.get("exposition").and_then(|e| e.as_str()).unwrap();

    // The exposition parses and contains the required series. The
    // telemetry registry is process-global (shared across tests in this
    // binary), so assertions are existence/at-least, never equality.
    let samples = domatic_telemetry::prometheus::parse(text).expect("valid exposition");
    let value_of = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    };
    assert!(value_of("server_requests_total").is_some_and(|v| v >= 2.0));
    assert!(value_of("runtime_cache_bytes").is_some_and(|v| v > 0.0));
    assert!(value_of("server_cache_entries").is_some_and(|v| v >= 1.0));
    assert!(
        samples
            .iter()
            .any(|s| s.name == "server_request_latency_us_bucket"
                && s.label("op") == Some("solve")
                && s.label("le").is_some()),
        "per-op latency histogram buckets present"
    );
    assert!(
        samples
            .iter()
            .any(|s| s.name == "server_solve_latency_us_count"
                && s.label("alg") == Some("greedy")
                && s.label("graph") == Some("ring")),
        "per-solver/per-graph latency histogram present"
    );
    // And the full text round-trips through the snapshot parser.
    let snap = domatic_telemetry::prometheus::parse_snapshot(text).unwrap();
    assert!(snap.counters.contains_key("server_requests"));
}

#[test]
fn profile_op_reports_the_trace_ring() {
    let server = make_server(ServerConfig {
        capacity: 8,
        batch_window: Duration::ZERO,
        cache_bytes: 1 << 20,
        trace_ring: 4,
        ..ServerConfig::default()
    });
    let (buf, sink) = sink();
    for seed in 0..3 {
        let line = format!(
            "{{\"id\":{seed},\"op\":\"solve\",\"graph\":\"ring\",\"alg\":\"greedy\",\"b\":3,\"seed\":{seed}}}"
        );
        server.handle_line(&line, &sink);
    }
    wait_lines(&buf, 3);
    server.handle_line(r#"{"id":99,"op":"profile"}"#, &sink);
    let responses = wait_lines(&buf, 4);
    let profile_line = responses.iter().find(|l| id_of(l) == 99).unwrap();
    let v = json::parse(&result_of(profile_line)).unwrap();
    let ring = match v.get("ring") {
        Some(json::Json::Arr(items)) => items,
        other => panic!("ring must be an array: {other:?}"),
    };
    assert_eq!(ring.len(), 3, "one completed record per request");
    for rec in ring {
        assert_eq!(rec.get("op").and_then(|o| o.as_str()), Some("solve"));
        assert_eq!(rec.get("outcome").and_then(|o| o.as_str()), Some("ok"));
        let total = rec.get("total_us").and_then(|t| t.as_int()).unwrap();
        let queue = rec.get("queue_us").and_then(|t| t.as_int()).unwrap();
        let solve = rec.get("solve_us").and_then(|t| t.as_int()).unwrap();
        let render = rec.get("render_us").and_then(|t| t.as_int()).unwrap();
        assert!(
            queue + solve + render <= total + 1,
            "phases partition total: {rec:?}"
        );
    }
    assert!(v.get("spans").is_some());
}

#[test]
fn slow_request_threshold_dumps_lifecycles_to_the_access_log() {
    let server = make_server(ServerConfig {
        capacity: 8,
        batch_window: Duration::ZERO,
        cache_bytes: 1 << 20,
        slow_ms: Some(0), // everything is an outlier
        ..ServerConfig::default()
    });
    let log_buf = Arc::new(Mutex::new(Vec::new()));
    server.set_access_log(Box::new(SharedLog(Arc::clone(&log_buf))));
    let (buf, sink) = sink();
    server.handle_line(r#"{"id":1,"op":"bounds","graph":"ring","b":3}"#, &sink);
    wait_lines(&buf, 1);
    let text = String::from_utf8(log_buf.lock().unwrap().clone()).unwrap();
    let slow: Vec<&str> = text
        .lines()
        .filter(|l| l.contains("\"event\":\"slow_request\""))
        .collect();
    assert_eq!(slow.len(), 1, "{text}");
    let v = json::parse(slow[0]).unwrap();
    let events = match v.get("events") {
        Some(json::Json::Arr(e)) => e.len(),
        other => panic!("events must be an array: {other:?}"),
    };
    assert!(events >= 3, "lifecycle dump carries the event list");
}
