//! Integration tests for the dynamic-graph surface: the `mutate` op's
//! wire shape, per-op incremental-repair equivalence (a repaired solve
//! must be byte-identical to a from-scratch solve of the mutated
//! topology), and the cache's lineage-invalidation invariant — a
//! mutation retires exactly its own superseded version, never a
//! sibling graph's entries, and the cache never holds an entry keyed
//! by an ancestor hash (property-tested over random mutation
//! sequences).

use domatic_core::{graph_hash, versioned_graph_hash};
use domatic_graph::Graph;
use domatic_server::server::ResponseSink;
use domatic_server::{Server, ServerConfig};
use domatic_telemetry::json;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The CI smoke topology: a ring with skip-3 chords, solvable at b ≥ 1.
fn ring_graph(n: u32) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n)
        .flat_map(|i| [(i, (i + 1) % n), (i, (i + 3) % n)])
        .collect();
    Graph::from_edges(n as usize, &edges)
}

/// Edge list of a graph as sorted (min, max) pairs — for building
/// expected mutated topologies by hand.
fn edge_list(g: &Graph) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for u in 0..g.n() as u32 {
        for &v in g.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    edges.sort_unstable();
    edges
}

fn server_with(graphs: &[(&str, Graph)]) -> Arc<Server> {
    let server = Server::new(ServerConfig {
        capacity: 8,
        batch_window: Duration::ZERO,
        cache_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    for (name, g) in graphs {
        server.add_graph(name.to_string(), g.clone());
    }
    Arc::new(server)
}

fn sink() -> (Arc<Mutex<Vec<u8>>>, ResponseSink) {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let dyn_sink: ResponseSink = buf.clone();
    (buf, dyn_sink)
}

fn lines(buf: &Arc<Mutex<Vec<u8>>>) -> Vec<String> {
    let bytes = buf.lock().unwrap();
    String::from_utf8(bytes.clone())
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

/// Polls until `n` response lines have arrived (solves are async).
fn wait_lines(buf: &Arc<Mutex<Vec<u8>>>, n: usize) -> Vec<String> {
    let start = Instant::now();
    loop {
        let have = lines(buf);
        if have.len() >= n {
            return have;
        }
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "timed out at {} of {n} responses: {have:?}",
            have.len()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The rendered `result` payload of a response line (panics on errors).
fn result_of(line: &str) -> String {
    let prefix = line
        .find("\"result\":")
        .unwrap_or_else(|| panic!("not an ok response: {line}"));
    line[prefix + "\"result\":".len()..line.len() - 1].to_string()
}

fn is_ok(line: &str) -> bool {
    let v = json::parse(line).unwrap();
    v.get("ok") == Some(&json::Json::Bool(true))
}

fn error_kind(line: &str) -> String {
    let v = json::parse(line).unwrap();
    assert_eq!(v.get("ok"), Some(&json::Json::Bool(false)), "{line}");
    v.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(|k| k.as_str())
        .unwrap()
        .to_string()
}

/// Sends one request line and returns its (single) response. Mutations
/// respond inline but solves are asynchronous, so this drives a fresh
/// sink per call and waits.
fn roundtrip(server: &Arc<Server>, line: &str) -> String {
    let (buf, s) = sink();
    server.handle_line(line, &s);
    wait_lines(&buf, 1)[0].clone()
}

fn solve_line(id: u64, graph: &str) -> String {
    format!("{{\"id\":{id},\"op\":\"solve\",\"graph\":\"{graph}\",\"alg\":\"greedy\",\"b\":3,\"seed\":0}}")
}

#[test]
fn mutate_response_shape_is_pinned() {
    let server = server_with(&[("ring", ring_graph(24))]);
    let parent = graph_hash(&ring_graph(24));
    let mut expected_edges = edge_list(&ring_graph(24));
    expected_edges.retain(|&e| e != (2, 3));
    let mutated = Graph::from_edges(24, &expected_edges);
    let line = roundtrip(
        &server,
        r#"{"id":7,"op":"mutate","graph":"ring","action":"remove_edge","u":2,"v":3}"#,
    );
    assert_eq!(
        line,
        format!(
            "{{\"id\":7,\"ok\":true,\"result\":{{\"action\":\"remove_edge\",\"graph\":\"ring\",\"graph_hash\":\"{:016x}\",\"m\":{},\"n\":24,\"parent_hash\":\"{parent:016x}\",\"version\":1}}}}",
            graph_hash(&mutated),
            mutated.m()
        )
    );
    let (hash, version, ancestors) = server.graph_lineage("ring").unwrap();
    assert_eq!(hash, graph_hash(&mutated));
    assert_eq!(version, 1);
    assert_eq!(ancestors, vec![parent]);
}

#[test]
fn rejected_mutation_leaves_lineage_and_stats_unchanged() {
    let server = server_with(&[("ring", ring_graph(24))]);
    let before = server.graph_lineage("ring").unwrap();
    // (0, 2) is not an edge of the ring, so removing it must fail.
    let line = roundtrip(
        &server,
        r#"{"id":3,"op":"mutate","graph":"ring","action":"remove_edge","u":0,"v":2}"#,
    );
    assert_eq!(error_kind(&line), "bad_request");
    assert_eq!(server.graph_lineage("ring").unwrap(), before);
    let stats = server.stats();
    assert_eq!(stats.mutations, 0, "rejected mutations do not count");
    assert_eq!(stats.lineage_invalidations, 0);
    // Unknown graphs get the typed unknown_graph error, same as solve.
    let line = roundtrip(
        &server,
        r#"{"id":4,"op":"mutate","graph":"ghost","action":"add_edge","u":0,"v":2}"#,
    );
    assert_eq!(error_kind(&line), "unknown_graph");
}

/// The tentpole equivalence guarantee, per mutation op: mutate a served
/// graph, solve it (which takes the incremental-repair path seeded by
/// the pre-mutation solve), and require the response bytes to equal a
/// fresh server's from-scratch solve of the same mutated topology.
#[test]
fn repaired_solves_are_byte_identical_to_from_scratch_solves_for_every_op() {
    let base = ring_graph(24);
    let base_edges = edge_list(&base);

    // (mutate request body, expected mutated graph, battery overrides)
    let mut cases: Vec<(&str, Graph, BTreeMap<u32, u64>)> = Vec::new();
    let mut with_added = base_edges.clone();
    with_added.push((0, 12));
    cases.push((
        r#""action":"add_edge","u":0,"v":12"#,
        Graph::from_edges(24, &with_added),
        BTreeMap::new(),
    ));
    let mut with_removed = base_edges.clone();
    with_removed.retain(|&e| e != (2, 3));
    cases.push((
        r#""action":"remove_edge","u":2,"v":3"#,
        Graph::from_edges(24, &with_removed),
        BTreeMap::new(),
    ));
    let mut with_node = base_edges.clone();
    with_node.extend([(0, 24), (5, 24)]);
    cases.push((
        r#""action":"add_node","neighbors":[0,5]"#,
        Graph::from_edges(25, &with_node),
        BTreeMap::new(),
    ));
    // Removing node 3 compacts every id above it down by one.
    let compacted: Vec<(u32, u32)> = base_edges
        .iter()
        .filter(|&&(u, v)| u != 3 && v != 3)
        .map(|&(u, v)| (u - u32::from(u > 3), v - u32::from(v > 3)))
        .collect();
    cases.push((
        r#""action":"remove_node","node":3"#,
        Graph::from_edges(23, &compacted),
        BTreeMap::new(),
    ));
    cases.push((
        r#""action":"set_battery","node":7,"value":1"#,
        base.clone(),
        BTreeMap::from([(7u32, 1u64)]),
    ));

    for (body, expected_graph, overrides) in cases {
        // Server A: register, solve (seeds the repair hint), mutate,
        // solve again — the second solve runs the repair path.
        let a = server_with(&[("g", base.clone())]);
        assert!(is_ok(&roundtrip(&a, &solve_line(1, "g"))));
        let mutate = roundtrip(
            &a,
            &format!("{{\"id\":2,\"op\":\"mutate\",\"graph\":\"g\",{body}}}"),
        );
        assert!(is_ok(&mutate), "{body}: {mutate}");
        let repaired = roundtrip(&a, &solve_line(3, "g"));
        assert!(is_ok(&repaired), "{body}: {repaired}");
        let stats = a.stats();
        assert_eq!(
            stats.repairs + stats.repair_fallbacks,
            1,
            "{body}: post-mutation solve must take the repair path"
        );

        // Server B: the mutated topology registered fresh — no history,
        // no hints, a cold cache.
        let b = Server::new(ServerConfig {
            capacity: 8,
            batch_window: Duration::ZERO,
            cache_bytes: 1 << 20,
            ..ServerConfig::default()
        });
        b.add_graph_with_batteries("g", expected_graph.clone(), overrides.clone());
        let b = Arc::new(b);
        let scratch = roundtrip(&b, &solve_line(3, "g"));
        assert_eq!(
            result_of(&repaired),
            result_of(&scratch),
            "{body}: repaired solve must be byte-identical to from-scratch"
        );

        // And the lineage agrees: server A's live hash is exactly the
        // fresh registration's hash (content-addressed versioning).
        assert_eq!(
            a.graph_lineage("g").unwrap().0,
            versioned_graph_hash(&expected_graph, &overrides),
            "{body}"
        );
    }
}

#[test]
fn mutation_retires_ancestor_cache_entries_but_spares_siblings() {
    let server = server_with(&[("a", ring_graph(10)), ("b", ring_graph(14))]);
    assert!(is_ok(&roundtrip(&server, &solve_line(1, "a"))));
    assert!(is_ok(&roundtrip(&server, &solve_line(2, "b"))));
    let a_old = server.graph_lineage("a").unwrap().0;
    let b_hash = server.graph_lineage("b").unwrap().0;
    assert_eq!(server.cache_graph_hashes(), {
        let mut v = vec![a_old, b_hash];
        v.sort_unstable();
        v
    });
    let line = roundtrip(
        &server,
        r#"{"id":3,"op":"mutate","graph":"a","action":"remove_edge","u":0,"v":1}"#,
    );
    assert!(is_ok(&line));
    assert_eq!(
        server.cache_graph_hashes(),
        vec![b_hash],
        "ancestor entries retired, sibling entries untouched"
    );
    let stats = server.stats();
    assert_eq!(stats.lineage_invalidations, 1);
    // The sibling's cached bytes still serve: a repeat solve of `b` is
    // a cache hit.
    let hits_before = stats.cache_hits;
    assert!(is_ok(&roundtrip(&server, &solve_line(4, "b"))));
    assert_eq!(server.stats().cache_hits, hits_before + 1);
}

/// One deterministic mutation request for op code `op` at step `i`,
/// given the graph's current node count. Any individual request may be
/// rejected (duplicate edge, same battery value, …) — rejections must
/// leave the lineage untouched, which the invariant below covers too.
fn mutation_body(op: u8, i: u64, n: u64) -> String {
    match op % 5 {
        0 => format!(
            "\"action\":\"add_edge\",\"u\":{},\"v\":{}",
            i % n,
            (i * 5 + 2) % n
        ),
        1 => format!(
            "\"action\":\"remove_edge\",\"u\":{},\"v\":{}",
            i % n,
            (i + 1) % n
        ),
        2 => format!("\"action\":\"add_node\",\"neighbors\":[{}]", i % n),
        3 => format!("\"action\":\"remove_node\",\"node\":{}", i % n),
        _ => format!(
            "\"action\":\"set_battery\",\"node\":{},\"value\":{}",
            i % n,
            (i % 3) + 1
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After ANY mutation sequence, the cache holds entries only for
    /// currently-live graph versions: no entry keyed by an ancestor
    /// hash survives, and the untouched sibling graph's entry always
    /// does. Solves run after every mutation so intermediate versions
    /// all get cached — and must all be retired again.
    #[test]
    fn cache_never_holds_ancestor_entries(ops in proptest::collection::vec(0u8..5, 0..8)) {
        let server = server_with(&[("a", ring_graph(10)), ("b", ring_graph(14))]);
        prop_assert!(is_ok(&roundtrip(&server, &solve_line(1, "a"))));
        prop_assert!(is_ok(&roundtrip(&server, &solve_line(2, "b"))));
        let b_hash = server.graph_lineage("b").unwrap().0;
        let mut n: u64 = 10;
        for (i, &op) in ops.iter().enumerate() {
            let body = mutation_body(op, i as u64, n);
            let line = roundtrip(
                &server,
                &format!("{{\"id\":{},\"op\":\"mutate\",\"graph\":\"a\",{body}}}", 10 + 2 * i),
            );
            if is_ok(&line) {
                match op % 5 {
                    2 => n += 1,
                    3 => n -= 1,
                    _ => {}
                }
            }
            prop_assert!(is_ok(&roundtrip(
                &server,
                &solve_line(11 + 2 * i as u64, "a")
            )));
            let live_a = server.graph_lineage("a").unwrap().0;
            for h in server.cache_graph_hashes() {
                prop_assert!(
                    h == live_a || h == b_hash,
                    "cache holds non-live hash {h:016x} after step {i} (live a {live_a:016x}, b {b_hash:016x})"
                );
            }
        }
        prop_assert!(
            server.cache_graph_hashes().contains(&b_hash),
            "sibling graph's entry must survive the whole sequence"
        );
    }
}
