//! Integration tests for the evented TCP transport: receipt-order
//! pipelining, shed tiers, drain behavior (no leaked connection
//! handlers), shard-count response invariance, and the telemetry the
//! shards export.

use domatic_graph::Graph;
use domatic_server::server::ResponseSink;
use domatic_server::{Server, ServerConfig};
use domatic_telemetry::json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn ring_graph(n: u32) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n)
        .flat_map(|i| [(i, (i + 1) % n), (i, (i + 3) % n)])
        .collect();
    Graph::from_edges(n as usize, &edges)
}

fn make_server(cfg: ServerConfig) -> Arc<Server> {
    let server = Server::new(cfg);
    server.add_graph("ring", ring_graph(24));
    server.add_graph("ring2", ring_graph(30));
    Arc::new(server)
}

/// Starts `serve_tcp` on an ephemeral port; returns the bound address
/// and the serve thread (joined by sending a `shutdown` line).
fn start(server: &Arc<Server>) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let srv = Arc::clone(server);
    let handle = std::thread::spawn(move || srv.serve_tcp(listener).unwrap());
    (addr, handle)
}

fn shutdown(addr: std::net::SocketAddr, handle: std::thread::JoinHandle<()>) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;
    writeln!(stream, "{{\"id\":99999,\"op\":\"shutdown\"}}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("draining"), "{line}");
    handle.join().unwrap();
}

fn sink() -> (Arc<Mutex<Vec<u8>>>, ResponseSink) {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let dyn_sink: ResponseSink = buf.clone();
    (buf, dyn_sink)
}

fn wait_lines(buf: &Arc<Mutex<Vec<u8>>>, n: usize) -> Vec<String> {
    let start = Instant::now();
    loop {
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let have: Vec<String> = text.lines().map(str::to_string).collect();
        if have.len() >= n {
            return have;
        }
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "timed out at {} of {n} responses: {have:?}",
            have.len()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn id_of(line: &str) -> u64 {
    let v = json::parse(line).unwrap();
    u64::try_from(v.get("id").unwrap().as_int().unwrap()).unwrap()
}

/// A pipelined workload whose completion order differs from receipt
/// order on purpose: cheap inline ops interleaved with solves of
/// different costs and duplicate keys.
fn pipelined_workload() -> Vec<String> {
    let mut lines = Vec::new();
    for i in 0..12u64 {
        let id = i + 1;
        let line = match i % 4 {
            0 => format!(
                "{{\"id\":{id},\"op\":\"solve\",\"graph\":\"ring\",\"alg\":\"greedy\",\"b\":3,\"seed\":{}}}",
                i % 3
            ),
            1 => format!("{{\"id\":{id},\"op\":\"ping\"}}"),
            2 => format!("{{\"id\":{id},\"op\":\"bounds\",\"graph\":\"ring2\",\"b\":2}}"),
            _ => format!(
                "{{\"id\":{id},\"op\":\"solve\",\"graph\":\"ring2\",\"alg\":\"uniform\",\"b\":2,\"seed\":{}}}",
                i % 2
            ),
        };
        lines.push(line);
    }
    lines
}

#[test]
fn pipelined_requests_answer_in_receipt_order_byte_identically() {
    let cfg = ServerConfig {
        capacity: 16,
        batch_window: Duration::from_millis(5),
        cache_bytes: 1 << 20,
        shards: 2,
        ..ServerConfig::default()
    };
    let requests = pipelined_workload();

    // Reference responses: the same lines driven synchronously through
    // handle_line, one at a time, on an identically configured server.
    let reference = {
        let server = make_server(cfg.clone());
        let (buf, sink) = sink();
        for (i, line) in requests.iter().enumerate() {
            server.handle_line(line, &sink);
            wait_lines(&buf, i + 1);
        }
        wait_lines(&buf, requests.len())
    };

    // The evented path: all 12 requests written in one burst on one
    // socket before reading anything back.
    let server = make_server(cfg);
    let (addr, handle) = start(&server);
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;
    let mut burst = String::new();
    for line in &requests {
        burst.push_str(line);
        burst.push('\n');
    }
    stream.write_all(burst.as_bytes()).unwrap();
    stream.flush().unwrap();

    let mut got = Vec::new();
    for _ in 0..requests.len() {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        got.push(line.trim_end().to_string());
    }

    let ids: Vec<u64> = got.iter().map(|l| id_of(l)).collect();
    let want: Vec<u64> = (1..=requests.len() as u64).collect();
    assert_eq!(ids, want, "responses must arrive in receipt order");
    assert_eq!(
        got, reference,
        "pipelined responses must be byte-identical to the synchronous path"
    );
    assert_eq!(server.stats().errors, 0);
    shutdown(addr, handle);
}

#[test]
fn cache_hits_serve_while_misses_shed_at_saturated_capacity() {
    let server = make_server(ServerConfig {
        capacity: 1,
        batch_window: Duration::from_millis(400),
        cache_bytes: 1 << 20,
        ..ServerConfig::default()
    });
    let (buf, sink) = sink();
    let warm = r#"{"id":1,"op":"bounds","graph":"ring","b":3}"#;
    server.handle_line(warm, &sink);
    let warmed = wait_lines(&buf, 1);
    assert!(warmed[0].contains("\"ok\":true"), "{warmed:?}");

    // Saturate the single slot with a slow batch (different key).
    server.handle_line(
        r#"{"id":2,"op":"solve","graph":"ring","alg":"greedy","b":3}"#,
        &sink,
    );
    // A fresh miss (third key) is shed at tier "miss"...
    server.handle_line(r#"{"id":3,"op":"bounds","graph":"ring2","b":2}"#, &sink);
    let responses = wait_lines(&buf, 2);
    let shed = responses.iter().find(|l| id_of(l) == 3).unwrap();
    let v = json::parse(shed).unwrap();
    let error = v.get("error").expect("shed response is an error");
    assert_eq!(
        error.get("kind").and_then(|k| k.as_str()),
        Some("overloaded")
    );
    assert_eq!(
        error.get("shed_tier").and_then(|t| t.as_str()),
        Some("miss"),
        "{shed}"
    );
    // ...while the warmed key still serves from cache, bytes identical
    // to the warming response.
    server.handle_line(warm, &sink);
    let responses = wait_lines(&buf, 3);
    let hits: Vec<&String> = responses.iter().filter(|l| id_of(l) == 1).collect();
    assert_eq!(hits.len(), 2, "cache hit served under saturation");
    assert_eq!(hits[0], hits[1], "hit must be byte-identical");

    server.drain();
    let stats = server.stats();
    assert_eq!(stats.shed_miss, 1);
    assert_eq!(stats.shed_join, 0);
    assert_eq!(stats.overloads, 1);
    assert!(stats.cache_hits >= 1);
}

#[test]
fn severe_waiter_pressure_sheds_even_batch_joins() {
    let server = make_server(ServerConfig {
        capacity: 8,
        batch_window: Duration::from_millis(300),
        cache_bytes: 1 << 20,
        shed_join_waiters: 1,
        ..ServerConfig::default()
    });
    let (buf, sink) = sink();
    let line = r#"{"id":1,"op":"solve","graph":"ring","alg":"greedy","b":3}"#;
    // The leader opens a batch (1 queued waiter = the threshold)...
    server.handle_line(line, &sink);
    // ...so the identical request can no longer even join.
    server.handle_line(line, &sink);
    let responses = wait_lines(&buf, 1);
    let v = json::parse(&responses[0]).unwrap();
    let error = v.get("error").expect("join must be shed");
    assert_eq!(
        error.get("shed_tier").and_then(|t| t.as_str()),
        Some("join"),
        "{responses:?}"
    );
    server.drain();
    let stats = server.stats();
    assert_eq!(stats.shed_join, 1);
    assert_eq!(stats.batch_joined, 0);
    assert_eq!(stats.solves, 1, "the leader still solves");
}

#[test]
fn shutdown_closes_idle_connections_and_joins_all_transport_threads() {
    let server = make_server(ServerConfig {
        capacity: 8,
        batch_window: Duration::from_millis(2),
        cache_bytes: 1 << 20,
        shards: 2,
        ..ServerConfig::default()
    });
    let (addr, handle) = start(&server);

    // Idle clients that never send a byte and never disconnect: the
    // pre-evented transport leaked a blocked reader thread per one of
    // these. The evented transport must tear them down on shutdown.
    let mut idle: Vec<TcpStream> = (0..4).map(|_| TcpStream::connect(addr).unwrap()).collect();
    // An active client with in-flight work right at shutdown.
    let active = TcpStream::connect(addr).unwrap();
    let mut active_reader = BufReader::new(active.try_clone().unwrap());
    let mut active = active;
    writeln!(
        active,
        "{{\"id\":5,\"op\":\"solve\",\"graph\":\"ring\",\"alg\":\"greedy\",\"b\":3}}"
    )
    .unwrap();

    // The active client's work completes (so it is committed, not shed,
    // when shutdown arrives)...
    let mut line = String::new();
    active_reader.read_line(&mut line).unwrap();
    assert_eq!(id_of(&line), 5);
    assert!(line.contains("\"ok\":true"), "{line}");

    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().connections < 5 {
        assert!(Instant::now() < deadline, "{:?}", server.stats());
        std::thread::sleep(Duration::from_millis(5));
    }

    shutdown(addr, handle); // joins the serve thread (and its shards)

    // Every idle socket got closed by the server: reads see EOF.
    for stream in &mut idle {
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut byte = [0u8; 1];
        assert_eq!(
            stream.read(&mut byte).unwrap_or(0),
            0,
            "idle connection must be closed on shutdown"
        );
    }
    assert_eq!(
        server.stats().connections,
        0,
        "no connection outlives serve_tcp"
    );
}

#[test]
fn responses_are_byte_identical_across_shard_counts() {
    let run = |shards: usize| -> Vec<String> {
        let server = make_server(ServerConfig {
            capacity: 16,
            batch_window: Duration::from_millis(2),
            cache_bytes: 1 << 20,
            shards,
            ..ServerConfig::default()
        });
        let (addr, handle) = start(&server);
        let requests = pipelined_workload();
        // Spread the same workload across 3 connections (different
        // shards when sharded) and collect every response.
        let mut all: Vec<String> = Vec::new();
        let mut clients = Vec::new();
        for chunk in requests.chunks(4) {
            let chunk: Vec<String> = chunk.to_vec();
            clients.push(std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut stream = stream;
                for line in &chunk {
                    writeln!(stream, "{line}").unwrap();
                }
                stream.flush().unwrap();
                let mut got = Vec::new();
                for _ in 0..chunk.len() {
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    got.push(line.trim_end().to_string());
                }
                got
            }));
        }
        for c in clients {
            all.extend(c.join().unwrap());
        }
        shutdown(addr, handle);
        all.sort();
        all
    };
    assert_eq!(
        run(1),
        run(4),
        "response bytes must not depend on the shard count"
    );
}

#[test]
fn metrics_scrape_reports_connection_gauge_and_shard_queue_depth() {
    let server = make_server(ServerConfig {
        capacity: 8,
        batch_window: Duration::from_millis(2),
        cache_bytes: 1 << 20,
        shards: 2,
        ..ServerConfig::default()
    });
    let (addr, handle) = start(&server);
    // Three live connections, one of which does a solve (so the depth
    // histogram has recorded on a nonzero path too).
    let _idle_a = TcpStream::connect(addr).unwrap();
    let _idle_b = TcpStream::connect(addr).unwrap();
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;
    writeln!(
        stream,
        "{{\"id\":1,\"op\":\"solve\",\"graph\":\"ring\",\"alg\":\"greedy\",\"b\":3}}"
    )
    .unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":true"), "{line}");

    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().connections < 3 {
        assert!(Instant::now() < deadline, "{:?}", server.stats());
        std::thread::sleep(Duration::from_millis(5));
    }
    // Each shard records its queue depth once per loop pass; rescrape
    // until both shards have reported (bounded).
    let text = loop {
        let text = server.metrics_text();
        if text.contains("server_shard_queue_depth_bucket{shard=\"0\",le=")
            && text.contains("server_shard_queue_depth_bucket{shard=\"1\",le=")
        {
            break text;
        }
        assert!(
            Instant::now() < deadline,
            "shard depth series missing:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    domatic_telemetry::prometheus::parse_snapshot(&text).expect("exposition must parse back");
    // The gauge is global (shared registry), so other concurrently
    // running tests may have moved it; this server's own view is exact.
    assert!(
        text.contains("server_connections"),
        "missing connections gauge:\n{text}"
    );
    assert_eq!(server.stats().connections, 3);
    assert!(
        text.contains("server_shard_queue_depth_count{shard=\"0\"}"),
        "missing depth count:\n{text}"
    );
    shutdown(addr, handle);
}
