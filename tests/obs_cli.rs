//! End-to-end observability test: spawns the real `domatic serve` binary
//! with `--access-log` + `--metrics-port`, drives mixed traffic over
//! TCP, then runs `domatic top` and `domatic profile` as subprocesses
//! against the live server — the acceptance path for the tracing,
//! exposition, and profiling surface.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_domatic");

struct ServerProc {
    child: Child,
    addr: String,
    metrics_addr: String,
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Starts `domatic serve` on ephemeral ports and reads both announced
/// addresses off its stdout.
fn start_server(access_log: &std::path::Path) -> ServerProc {
    let mut child = Command::new(BIN)
        .args([
            "serve",
            "--port",
            "0",
            "--metrics-port",
            "0",
            "--graph",
            "main=ring:24",
            "--batch-window-ms",
            "0",
            "--access-log",
        ])
        .arg(access_log)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn domatic serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    let mut addr = String::new();
    let mut metrics_addr = String::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while (addr.is_empty() || metrics_addr.is_empty()) && Instant::now() < deadline {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        if let Some(a) = line.trim().strip_prefix("listening on ") {
            addr = a.to_string();
        }
        if let Some(a) = line.trim().strip_prefix("metrics on ") {
            metrics_addr = a.to_string();
        }
    }
    assert!(
        !addr.is_empty() && !metrics_addr.is_empty(),
        "server did not announce its addresses"
    );
    ServerProc {
        child,
        addr,
        metrics_addr,
    }
}

fn drive_traffic(addr: &str, n: u64) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    for i in 0..n {
        let line = if i % 3 == 0 {
            format!("{{\"id\":{i},\"op\":\"bounds\",\"graph\":\"main\",\"b\":3}}")
        } else {
            format!(
                "{{\"id\":{i},\"op\":\"solve\",\"graph\":\"main\",\"alg\":\"greedy\",\"b\":3,\"seed\":{}}}",
                i % 2
            )
        };
        writeln!(stream, "{line}").expect("write");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read");
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }
}

#[test]
fn top_and_profile_run_against_a_live_server() {
    let dir = std::env::temp_dir().join(format!("domatic-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("access.jsonl");
    let server = start_server(&log_path);
    drive_traffic(&server.addr, 12);

    // `domatic top` completes a bounded number of refresh frames.
    let top = Command::new(BIN)
        .args([
            "top",
            "--addr",
            &server.addr,
            "--interval-ms",
            "150",
            "--iterations",
            "2",
            "--no-clear",
        ])
        .output()
        .expect("run domatic top");
    assert!(top.status.success(), "top failed: {top:?}");
    let out = String::from_utf8_lossy(&top.stdout);
    assert!(out.contains("collecting first window"), "{out}");
    assert!(out.contains("req/s"), "{out}");
    assert!(out.contains("p99_us"), "{out}");

    // `domatic profile` emits collapsed-stack lines for the traffic.
    let profile = Command::new(BIN)
        .args(["profile", "--addr", &server.addr])
        .output()
        .expect("run domatic profile");
    assert!(profile.status.success(), "profile failed: {profile:?}");
    let stacks = String::from_utf8_lossy(&profile.stdout);
    assert!(
        stacks.lines().any(|l| {
            l.starts_with("serve;solve;main;greedy;")
                && l.split(' ')
                    .nth(1)
                    .is_some_and(|v| v.parse::<u64>().is_ok())
        }),
        "expected solve frames in:\n{stacks}"
    );

    // The HTTP scrape endpoint serves parseable exposition with the
    // required series.
    let mut scrape = TcpStream::connect(&server.metrics_addr).expect("connect metrics");
    write!(scrape, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    BufReader::new(scrape)
        .read_to_string(&mut response)
        .unwrap();
    let body = response
        .split_once("\r\n\r\n")
        .expect("HTTP response has a body")
        .1;
    let samples = domatic_telemetry::prometheus::parse(body).expect("exposition parses");
    assert!(samples
        .iter()
        .any(|s| s.name == "server_requests_total" && s.value >= 12.0));
    assert!(samples
        .iter()
        .any(|s| s.name == "server_request_latency_us_bucket" && s.label("op") == Some("solve")));

    // The access log holds valid JSON lines with per-trace monotone
    // timestamps.
    let log = std::fs::read_to_string(&log_path).expect("access log written");
    assert!(!log.trim().is_empty(), "access log captured events");
    let mut last: std::collections::HashMap<i128, i128> = std::collections::HashMap::new();
    for line in log.lines() {
        let v = domatic_telemetry::json::parse(line)
            .unwrap_or_else(|e| panic!("invalid access-log line {line}: {e}"));
        let (Some(trace), Some(t_us)) = (
            v.get("trace").and_then(|t| t.as_int()),
            v.get("t_us").and_then(|t| t.as_int()),
        ) else {
            continue; // slow_request dumps carry events instead of t_us
        };
        let prev = last.insert(trace, t_us).unwrap_or(0);
        assert!(t_us >= prev, "timestamps regress in trace {trace}: {line}");
    }

    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
