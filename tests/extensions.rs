//! Integration tests for the §7-extension pipelines: connected
//! clustering, general k-tolerance, epochs, augmentation, and the no-MAC
//! radio path.

use domatic::core::augment::augment_partition;
use domatic::core::cds::{all_entries_connected, connected_uniform_schedule};
use domatic::core::epochs::epoch_schedule;
use domatic::core::general::GeneralParams;
use domatic::core::general_fault_tolerant::{
    general_fault_tolerant_schedule, general_fault_tolerant_upper_bound,
};
use domatic::core::greedy::greedy_domatic_partition;
use domatic::core::uniform::UniformParams;
use domatic::distsim::protocols::radio_uniform::radio_uniform_schedule;
use domatic::distsim::radio::RadioParams;
use domatic::graph::domination::is_disjoint_dominating_family;
use domatic::prelude::*;
use domatic::schedule::{longest_valid_prefix, validate_schedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn batteries(n: usize, hi: u64, seed: u64) -> Batteries {
    let mut rng = StdRng::seed_from_u64(seed);
    Batteries::from_vec((0..n).map(|_| rng.random_range(1..=hi)).collect())
}

#[test]
fn connected_schedule_is_valid_and_connected_end_to_end() {
    let g = graph::generators::gnp::gnp_with_avg_degree(200, 70.0, 3);
    let b = 2u64;
    let run = connected_uniform_schedule(&g, b, &UniformParams { c: 3.0, seed: 5 });
    let batteries = Batteries::uniform(g.n(), b);
    validate_schedule(&g, &batteries, &run.schedule, 1).unwrap();
    assert!(all_entries_connected(&g, &run.schedule));
    assert!(run.connected_classes >= 1);
}

#[test]
fn general_ft_composes_with_epochs_bounds() {
    // Two independent extensions must both respect the same τ arithmetic.
    let g = graph::generators::gnp::gnp_with_avg_degree(250, 100.0, 6);
    let b = batteries(250, 5, 7);
    for k in [1usize, 2] {
        let run = general_fault_tolerant_schedule(&g, &b, k, &GeneralParams { c: 3.0, seed: 2 });
        let p = longest_valid_prefix(&g, &b, &run.schedule, k);
        assert!(p.lifetime() <= general_fault_tolerant_upper_bound(&g, &b, k));
    }
    let multi = epoch_schedule(&g, &b, &GeneralParams { c: 3.0, seed: 2 }, 15);
    validate_schedule(&g, &b, &multi.schedule, 1).unwrap();
    assert!(multi.schedule.lifetime() <= general_fault_tolerant_upper_bound(&g, &b, 1));
}

#[test]
fn augmentation_result_schedules_validly() {
    let g = graph::generators::gnp::gnp_with_avg_degree(200, 60.0, 9);
    let res = augment_partition(&g, greedy_domatic_partition(&g));
    assert!(is_disjoint_dominating_family(&g, &res.classes));
    // Turn the augmented family into a schedule and validate it.
    let b = 3u64;
    let schedule = Schedule::from_entries(res.classes.into_iter().map(|c| (c, b)));
    let batteries = Batteries::uniform(g.n(), b);
    validate_schedule(&g, &batteries, &schedule, 1).unwrap();
}

#[test]
fn radio_path_feeds_the_standard_validation_machinery() {
    let g = graph::generators::gnp::gnp_with_avg_degree(120, 50.0, 1);
    let b = 2u64;
    let run = radio_uniform_schedule(
        &g,
        b,
        3.0,
        &RadioParams {
            p: None,
            max_slots: 100_000,
            seed: 3,
        },
    );
    assert!(run.dissemination.complete);
    let batteries = Batteries::uniform(g.n(), b);
    let valid = longest_valid_prefix(&g, &batteries, &run.schedule, 1);
    validate_schedule(&g, &batteries, &valid, 1).unwrap();
    assert!(valid.lifetime() >= b); // at least one class survives
}

#[test]
fn connected_partition_respects_the_connectivity_ceiling() {
    // d_c(G) ≤ κ(G): every connected dominating set of a non-complete
    // graph must intersect every minimum vertex cut, and disjoint CDSs
    // need disjoint intersections.
    use domatic::core::cds::greedy_connected_partition;
    use domatic::graph::flow::vertex_connectivity;
    use domatic::graph::traversal::is_connected;
    for seed in 0..6 {
        let g = graph::generators::gnp::gnp_with_avg_degree(40, 8.0, seed);
        if !is_connected(&g) {
            continue;
        }
        let parts = greedy_connected_partition(&g);
        let kappa = vertex_connectivity(&g);
        assert!(
            parts.len() <= kappa.max(1),
            "seed {seed}: {} connected classes > κ = {kappa}",
            parts.len()
        );
    }
}

#[test]
fn fast_experiments_smoke() {
    // The cheap experiments must produce their expected table counts when
    // driven through the public registry (guards the binary's surface).
    for (id, tables) in [("e1", 1usize), ("e5", 1), ("e6", 2), ("e12", 1)] {
        let out = domatic::experiments::run_by_id(id).unwrap();
        assert_eq!(out.len(), tables, "{id}");
        for t in out {
            assert!(t.num_rows() > 0, "{id} produced an empty table");
        }
    }
}
