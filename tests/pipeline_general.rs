//! Integration: the general (non-uniform battery) pipeline — Algorithm 2
//! against Lemma 5.1, the LP optimum, and the greedy baseline.

use domatic::core::bounds::general_upper_bound;
use domatic::core::general::{general_schedule, GeneralParams};
use domatic::core::greedy::greedy_general_schedule;
use domatic::core::solver::{GeneralSolver, Solver, SolverConfig};
use domatic::lp::lp_optimal_lifetime;
use domatic::prelude::*;
use domatic::schedule::{longest_valid_prefix, validate_schedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn batteries(n: usize, hi: u64, seed: u64) -> Batteries {
    let mut rng = StdRng::seed_from_u64(seed);
    Batteries::from_vec((0..n).map(|_| rng.random_range(1..=hi)).collect())
}

#[test]
fn algorithm2_budget_and_bound_invariants() {
    let g = graph::generators::gnp::gnp_with_avg_degree(250, 70.0, 4);
    let b = batteries(250, 6, 11);
    for seed in 0..5 {
        let (raw, mc) = general_schedule(&g, &b, &GeneralParams { c: 3.0, seed });
        // Budget holds on the RAW schedule by construction, not just the
        // validated prefix.
        for v in 0..g.n() as NodeId {
            assert!(raw.active_time(v) <= b.get(v), "seed {seed}, node {v}");
        }
        let valid = longest_valid_prefix(&g, &b, &raw, 1);
        validate_schedule(&g, &b, &valid, 1).unwrap();
        assert!(valid.lifetime() <= general_upper_bound(&g, &b));
        assert!(valid.lifetime() >= mc.guaranteed_classes as u64 || mc.guaranteed_classes == 0);
    }
}

#[test]
fn greedy_and_algorithm2_both_below_lp_optimum() {
    for seed in 0..3 {
        let g = graph::generators::gnp::gnp_with_avg_degree(12, 5.0, seed);
        let b = batteries(12, 3, seed + 100);
        let opt = lp_optimal_lifetime(&g, &b.to_f64(), 5_000_000)
            .unwrap()
            .lifetime;
        let alg = GeneralSolver
            .schedule(&g, &b, &SolverConfig::new().trials(10))
            .unwrap();
        let greedy = greedy_general_schedule(&g, &b);
        validate_schedule(&g, &b, &greedy, 1).unwrap();
        assert!(alg.lifetime() as f64 <= opt + 1e-6, "seed {seed}");
        assert!(greedy.lifetime() as f64 <= opt + 1e-6, "seed {seed}");
        // The energy-coverage bound caps the LP too (Lemma 5.1 proof).
        assert!(
            opt <= general_upper_bound(&g, &b) as f64 + 1e-6,
            "seed {seed}"
        );
    }
}

#[test]
fn uniform_battery_input_reduces_general_to_uniform_shape() {
    // With b_v = b the general algorithm's guarantee must be within a
    // constant of the uniform one's on the same graph: both divide the
    // same neighborhood energy by a log factor.
    let g = graph::generators::gnp::gnp_with_avg_degree(300, 120.0, 8);
    let b = 3u64;
    let uni = Batteries::uniform(g.n(), b);
    let (raw, mc) = general_schedule(&g, &uni, &GeneralParams { c: 3.0, seed: 2 });
    let valid = longest_valid_prefix(&g, &uni, &raw, 1);
    assert!(mc.guaranteed_classes >= 1);
    assert!(valid.lifetime() >= mc.guaranteed_classes as u64);
    // Each node's active time is ≤ b by the distinct-color construction.
    for v in 0..g.n() as NodeId {
        assert!(raw.active_time(v) <= b);
    }
}

#[test]
fn zero_and_skewed_batteries_are_handled() {
    let g = graph::generators::regular::star(10);
    // Center rich, leaves dead: only {center} dominates; lifetime = b_center.
    let b = Batteries::from_vec(
        std::iter::once(7u64)
            .chain(std::iter::repeat_n(0, 9))
            .collect(),
    );
    let greedy = greedy_general_schedule(&g, &b);
    validate_schedule(&g, &b, &greedy, 1).unwrap();
    assert_eq!(greedy.lifetime(), 7);
    let (raw, _) = general_schedule(&g, &b, &GeneralParams::default());
    let valid = longest_valid_prefix(&g, &b, &raw, 1);
    validate_schedule(&g, &b, &valid, 1).unwrap();
}
