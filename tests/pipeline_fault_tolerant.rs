//! Integration: the k-tolerant pipeline — Algorithm 3, Lemma 6.1, the
//! distributed variant, and the netsim crash story.

use domatic::core::bounds::fault_tolerant_upper_bound;
use domatic::core::fault_tolerant::fault_tolerant_schedule;
use domatic::core::uniform::UniformParams;
use domatic::distsim::protocols::fault_tolerant::distributed_fault_tolerant_schedule;
use domatic::netsim::{simulate, DomaticRotation, EnergyModel, FailureInjector, SimConfig};
use domatic::prelude::*;
use domatic::schedule::{longest_valid_prefix, validate_schedule};

#[test]
fn k_sweep_respects_lemma_6_1_and_halving_floor() {
    let g = graph::generators::gnp::gnp_with_avg_degree(300, 90.0, 6);
    let b = 6u64;
    let batteries = Batteries::uniform(g.n(), b);
    let delta = g.min_degree().unwrap();
    let mut last = u64::MAX;
    for k in [1usize, 2, 3, 4] {
        assert!(delta >= k, "fixture must satisfy δ ≥ k");
        let run = fault_tolerant_schedule(&g, b, k, &UniformParams { c: 3.0, seed: 3 });
        let valid = longest_valid_prefix(&g, &batteries, &run.schedule, k);
        validate_schedule(&g, &batteries, &valid, k).unwrap();
        assert!(
            valid.lifetime() >= b / 2,
            "k={k}: everyone-on floor violated"
        );
        assert!(
            valid.lifetime() <= fault_tolerant_upper_bound(&g, b, k),
            "k={k}: Lemma 6.1 violated"
        );
        // Higher tolerance can never increase the validated lifetime on
        // the same coloring.
        assert!(valid.lifetime() <= last, "k={k} beat k={}", k - 1);
        last = valid.lifetime();
    }
}

#[test]
fn distributed_and_centralized_ft_share_structure() {
    let g = graph::generators::gnp::gnp_with_avg_degree(200, 80.0, 2);
    let b = 4u64;
    let k = 2usize;
    let central = fault_tolerant_schedule(&g, b, k, &UniformParams { c: 3.0, seed: 1 });
    let distributed = distributed_fault_tolerant_schedule(&g, b, k, 3.0, 1, 4);
    assert_eq!(central.phase1, distributed.phase1);
    assert_eq!(central.phase2_each, distributed.phase2_each);
    // Both validate at tolerance k.
    let batteries = Batteries::uniform(g.n(), b);
    for s in [central.schedule, distributed.schedule] {
        let valid = longest_valid_prefix(&g, &batteries, &s, k);
        validate_schedule(&g, &batteries, &valid, k).unwrap();
        assert!(valid.lifetime() >= b / 2);
    }
}

#[test]
fn merged_schedule_survives_scripted_crash_in_simulation() {
    // Build a 2-tolerant rotation and crash an active node mid-run: the
    // simulation must keep full coverage through the crash slot.
    let g = graph::generators::gnp::gnp_with_avg_degree(200, 80.0, 5);
    let run = fault_tolerant_schedule(&g, 8, 2, &UniformParams { c: 3.0, seed: 4 });
    // Use the schedule's merged phase-2 classes as rotation sets.
    let classes: Vec<NodeSet> = run
        .schedule
        .entries()
        .iter()
        .skip(1) // skip the everyone-on phase
        .map(|e| e.set.clone())
        .collect();
    assert!(!classes.is_empty());
    // Crash one member of the first class at slot 1.
    let victim = classes[0].iter().next().unwrap();
    let cfg = SimConfig {
        model: EnergyModel::ideal(),
        k: 1,
        max_slots: 50,
        switch_cost: 0.0,
    };
    let mut inj = FailureInjector::scripted(vec![(1, victim)]);
    let res = simulate(
        &g,
        &vec![8.0; g.n()],
        &mut DomaticRotation::new(classes, 4),
        &cfg,
        Some(&mut inj),
    );
    // The 2-dominating class still 1-dominates without the victim, so the
    // crash slot survives.
    assert!(
        res.lifetime > 1,
        "crash at slot 1 ended the run: {:?}",
        res.end
    );
}
