//! Integration: the full uniform-case pipeline across crates —
//! generator → Algorithm 1 → validation → bounds → exact LP.

use domatic::core::bounds::uniform_upper_bound;
use domatic::core::solver::{Solver, SolverConfig, UniformSolver};
use domatic::core::uniform::{uniform_schedule, UniformParams};
use domatic::lp::lp_optimal_lifetime;
use domatic::prelude::*;
use domatic::schedule::{longest_valid_prefix, validate_schedule};

#[test]
fn algorithm1_respects_bound_and_validates_across_families() {
    let b = 3u64;
    let instances: Vec<(&str, Graph)> = vec![
        (
            "gnp",
            graph::generators::gnp::gnp_with_avg_degree(300, 60.0, 1),
        ),
        (
            "rgg",
            graph::generators::geometric::random_geometric(
                300,
                graph::generators::geometric::radius_for_avg_degree(300, 30.0),
                2,
            )
            .graph,
        ),
        (
            "torus",
            graph::generators::grid::grid(
                17,
                17,
                graph::generators::grid::GridKind::EightConnected,
                true,
            ),
        ),
        ("complete", graph::generators::regular::complete(120)),
    ];
    for (name, g) in instances {
        let batteries = Batteries::uniform(g.n(), b);
        let (raw, coloring) = uniform_schedule(&g, b, &UniformParams { c: 3.0, seed: 7 });
        let valid = longest_valid_prefix(&g, &batteries, &raw, 1);
        validate_schedule(&g, &batteries, &valid, 1).unwrap();
        assert!(
            valid.lifetime() <= uniform_upper_bound(&g, b),
            "{name}: lifetime exceeds Lemma 4.1"
        );
        assert!(
            valid.lifetime() >= b,
            "{name}: even one class must give b slots"
        );
        assert!(coloring.num_classes >= coloring.guaranteed_classes.min(coloring.num_classes));
    }
}

#[test]
fn lp_optimum_between_algorithm_and_bound_on_small_instances() {
    // L_ALG ≤ L_OPT ≤ b(δ+1) must hold with exact arithmetic.
    let b = 2u64;
    for (n, d, seed) in [(10usize, 4.0, 1u64), (12, 5.0, 2), (14, 4.0, 3)] {
        let g = graph::generators::gnp::gnp_with_avg_degree(n, d, seed);
        let cfg = SolverConfig::new().seed(5).trials(10);
        let sched = UniformSolver
            .schedule(&g, &Batteries::uniform(n, b), &cfg)
            .unwrap();
        let opt = lp_optimal_lifetime(&g, &vec![b as f64; n], 5_000_000)
            .unwrap()
            .lifetime;
        assert!(
            sched.lifetime() as f64 <= opt + 1e-6,
            "n={n}: algorithm {} beat the optimum {}",
            sched.lifetime(),
            opt
        );
        assert!(
            opt <= uniform_upper_bound(&g, b) as f64 + 1e-6,
            "n={n}: LP {} above Lemma 4.1 {}",
            opt,
            uniform_upper_bound(&g, b)
        );
    }
}

#[test]
fn centralized_and_distributed_algorithm1_agree_statistically() {
    use domatic::distsim::protocols::uniform::distributed_uniform_schedule;
    // Same graph, same guarantees: both versions' validated lifetimes must
    // land in [b · guaranteed, b(δ+1)].
    let g = graph::generators::gnp::gnp_with_avg_degree(400, 120.0, 9);
    let b = 2u64;
    let batteries = Batteries::uniform(g.n(), b);
    let (c_raw, c_col) = uniform_schedule(&g, b, &UniformParams { c: 3.0, seed: 3 });
    let (d_raw, d_col, stats) = distributed_uniform_schedule(&g, b, 3.0, 3, 4);
    assert_eq!(c_col.guaranteed_classes, d_col.guaranteed_classes);
    assert_eq!(stats.rounds, 1);
    for raw in [c_raw, d_raw] {
        let valid = longest_valid_prefix(&g, &batteries, &raw, 1);
        assert!(valid.lifetime() >= b * c_col.guaranteed_classes as u64);
        assert!(valid.lifetime() <= uniform_upper_bound(&g, b));
    }
}
