//! Integration: the visualization pipeline — partition → topology SVG and
//! simulation trace → timeline SVG.

use domatic::core::greedy::greedy_domatic_partition;
use domatic::netsim::trace::{simulate_traced, traced_config};
use domatic::netsim::{DomaticRotation, SingleMds};
use domatic::prelude::*;
use domatic::schedule::compact::compact;
use domatic::viz::{
    circular, from_positions, render_timeline, render_topology, spring, TimelineStyle,
    TopologyStyle,
};

/// Cheap well-formedness check: every opened tag closes or self-closes,
/// in order (sufficient for the flat SVG we emit).
fn tags_balanced(svg: &str) -> bool {
    let mut depth = 0i32;
    let mut i = 0;
    let bytes = svg.as_bytes();
    while let Some(start) = svg[i..].find('<').map(|o| i + o) {
        let end = match svg[start..].find('>') {
            Some(o) => start + o,
            None => return false,
        };
        if bytes[start + 1] == b'/' {
            depth -= 1;
        } else if bytes[end - 1] != b'/' && !svg[start..end].starts_with("<?") {
            depth += 1;
        }
        if depth < 0 {
            return false;
        }
        i = end + 1;
    }
    depth == 0
}

#[test]
fn partition_topology_svg_renders_every_node() {
    let gg = graph::generators::geometric::random_geometric(
        120,
        graph::generators::geometric::radius_for_avg_degree(120, 15.0),
        3,
    );
    let g = gg.graph;
    let classes = greedy_domatic_partition(&g);
    // Geometric graphs use their true positions.
    let layout = from_positions(&gg.positions);
    let svg = render_topology(&g, &layout, &classes, &TopologyStyle::default());
    assert!(tags_balanced(&svg), "unbalanced SVG");
    // Every node drawn (plus ≤ 8 legend dots).
    let circles = svg.matches("<circle").count();
    assert!(circles >= g.n() && circles <= g.n() + 8);
    assert_eq!(svg.matches("<line").count(), g.m());
}

#[test]
fn trace_timeline_svg_matches_the_simulation() {
    let g = graph::generators::gnp::gnp_with_avg_degree(60, 20.0, 9);
    let classes = greedy_domatic_partition(&g);
    let cfg = traced_config(1, 10_000);
    let trace = simulate_traced(
        &g,
        &vec![5.0; g.n()],
        &mut DomaticRotation::new(classes, 1),
        &cfg,
        None,
    );
    assert!(trace.result.lifetime > 0);
    let schedule = compact(&trace.to_schedule());
    let svg = render_timeline(&schedule, g.n(), &TimelineStyle::default());
    assert!(tags_balanced(&svg));
    assert!(svg.contains(&format!("node {}", g.n() - 1)));
}

#[test]
fn spring_and_circular_layouts_drive_the_same_renderer() {
    let g = graph::generators::regular::cycle(12);
    let classes = greedy_domatic_partition(&g);
    for layout in [circular(12), spring(&g, 40)] {
        let svg = render_topology(&g, &layout, &classes, &TopologyStyle::default());
        assert!(tags_balanced(&svg));
        assert_eq!(svg.matches("<line").count(), 12);
    }
}

#[test]
fn single_mds_trace_has_constant_awake_set_until_death() {
    let g = graph::generators::regular::star(8);
    let cfg = traced_config(1, 1000);
    let trace = simulate_traced(&g, &[4.0; 8], &mut SingleMds::new(), &cfg, None);
    // The first 4 slots all use {center}; compaction collapses them.
    let compacted = compact(&trace.to_schedule());
    assert!(compacted.num_steps() <= 2);
    assert_eq!(compacted.entries()[0].set.to_vec(), vec![0]);
}
