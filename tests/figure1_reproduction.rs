//! Integration: the paper's Figure 1, end to end, with every claim the
//! figure makes checked mechanically.

use domatic::lp::{exact_integral_lifetime, figure1_instance, lp_optimal_lifetime};
use domatic::prelude::*;
use domatic::schedule::{validate_schedule, Violation};

#[test]
fn figure1_full_story() {
    let (g, b32) = figure1_instance();
    let batteries = Batteries::from_vec(b32.iter().map(|&x| x as u64).collect());

    // The figure's numbers: 7 nodes, uniform battery 2, optimum 6.
    assert_eq!(g.n(), 7);
    assert!(batteries.is_uniform());
    assert_eq!(batteries.get(0), 2);

    // Exact optimum: 6, both fractional and integral.
    let frac = lp_optimal_lifetime(&g, &batteries.to_f64(), 5_000_000).unwrap();
    assert!((frac.lifetime - 6.0).abs() < 1e-6);
    assert_eq!(exact_integral_lifetime(&g, &b32, 5_000_000).unwrap(), 6);

    // The witness: three dominating sets, two slots each.
    let d_a = NodeSet::from_iter(7, [0u32, 3]);
    let d_b = NodeSet::from_iter(7, [1u32, 4]);
    let d_c = NodeSet::from_iter(7, [2u32, 5, 6]);
    let schedule = Schedule::from_entries([(d_a.clone(), 2), (d_b.clone(), 2), (d_c.clone(), 2)]);
    validate_schedule(&g, &batteries, &schedule, 1).unwrap();
    assert_eq!(schedule.lifetime(), 6);

    // "After the last step, node v cannot be covered anymore": every node
    // in N⁺(v) has exhausted its battery. Extending by ANY dominating set
    // for one more slot must violate some budget.
    let poor = 6u32;
    let used: Vec<u64> = (0..7).map(|v| schedule.active_time(v)).collect();
    for &u in g.neighbors(poor) {
        assert_eq!(
            used[u as usize],
            batteries.get(u),
            "neighbor {u} must be spent"
        );
    }
    assert_eq!(used[poor as usize], batteries.get(poor));

    // Mechanical check: appending any minimal dominating set breaks the
    // budget of someone in N⁺(v).
    let all_min = domatic::lp::minimal_dominating_sets(&g, 1_000_000).unwrap();
    for ds in all_min {
        let mut extended = schedule.clone();
        extended.push(NodeSet::from_iter(7, ds.iter().copied()), 1);
        let err = validate_schedule(&g, &batteries, &extended, 1).unwrap_err();
        assert!(matches!(err, Violation::OverBudget { .. }));
    }
}

#[test]
fn figure1_optimum_is_not_unique() {
    // The paper notes "the optimal solution is not unique" — exhibit a
    // second, structurally different optimal schedule.
    let (g, _) = figure1_instance();
    let batteries = Batteries::uniform(7, 2);
    let alt = Schedule::from_entries([
        (NodeSet::from_iter(7, [0u32, 3]), 1),
        (NodeSet::from_iter(7, [1u32, 4]), 1),
        (NodeSet::from_iter(7, [6u32, 2, 5]), 1),
        (NodeSet::from_iter(7, [0u32, 3]), 1),
        (NodeSet::from_iter(7, [1u32, 4]), 1),
        (NodeSet::from_iter(7, [6u32, 2, 5]), 1),
    ]);
    validate_schedule(&g, &batteries, &alt, 1).unwrap();
    assert_eq!(alt.lifetime(), 6);
}
