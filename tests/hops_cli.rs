//! End-to-end d-hop CLI test: `domatic solve --hops 2` must emit a
//! schedule whose every slot 2-hop dominates the input graph, the
//! `validate --hops` subcommand must accept it, and `adapt` must reject
//! `--hops > 1` (the adaptive runtime's coverage census is 1-hop only).

use domatic::graph::domination::is_d_hop_dominating_set;
use domatic::graph::Graph;
use domatic::schedule::{validate_schedule_hops, Batteries};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_domatic");

/// A 16-ring with skip-3 chords, written in `domatic_graph::io` format.
fn ring_edges(n: u32) -> Vec<(u32, u32)> {
    (0..n)
        .flat_map(|i| [(i, (i + 1) % n), (i, (i + 3) % n)])
        .collect()
}

fn write_graph(path: &std::path::Path, n: u32, edges: &[(u32, u32)]) {
    let mut text = format!("n {n}\n");
    for (u, v) in edges {
        text.push_str(&format!("{u} {v}\n"));
    }
    std::fs::write(path, text).expect("write graph file");
}

#[test]
fn solve_with_hops_two_emits_a_valid_two_hop_schedule() {
    let dir = std::env::temp_dir().join(format!("domatic-hops-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let gpath = dir.join("ring16.txt");
    let spath = dir.join("sched.txt");
    let n = 16u32;
    let edges = ring_edges(n);
    write_graph(&gpath, n, &edges);

    let out = Command::new(BIN)
        .args(["solve"])
        .arg(&gpath)
        .args(["--hops", "2", "--alg", "greedy", "--b", "3", "--out"])
        .arg(&spath)
        .output()
        .expect("run domatic solve");
    assert!(
        out.status.success(),
        "solve --hops 2 failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Reload the emitted schedule and check every slot against the
    // library's own d-hop predicate on the ORIGINAL graph.
    let g = Graph::from_edges(n as usize, &edges);
    let (schedule, universe) =
        domatic::core::io::load_schedule(spath.to_str().unwrap()).expect("reload emitted schedule");
    assert_eq!(universe, g.n());
    assert!(schedule.lifetime() > 0);
    for entry in schedule.entries() {
        assert!(
            is_d_hop_dominating_set(&g, &entry.set, 2),
            "slot is not 2-hop dominating: {:?}",
            entry.set.to_vec()
        );
    }
    let batteries = Batteries::uniform(g.n(), 3);
    assert_eq!(
        validate_schedule_hops(&g, &batteries, &schedule, 1, 2),
        Ok(())
    );

    // The validate subcommand agrees, at the matching radius.
    let out = Command::new(BIN)
        .args(["validate"])
        .arg(&gpath)
        .arg(&spath)
        .args(["--b", "3", "--hops", "2"])
        .output()
        .expect("run domatic validate");
    assert!(
        out.status.success(),
        "validate --hops 2 rejected the solver's own schedule: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("VALID"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn schedule_alias_still_works_and_adapt_rejects_hops() {
    let dir = std::env::temp_dir().join(format!("domatic-hops-alias-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let gpath = dir.join("ring12.txt");
    let n = 12u32;
    let edges = ring_edges(n);
    write_graph(&gpath, n, &edges);

    // The old `schedule` spelling keeps working (it is the same command).
    let out = Command::new(BIN)
        .args(["schedule"])
        .arg(&gpath)
        .args(["--alg", "greedy", "--b", "2"])
        .output()
        .expect("run domatic schedule");
    assert!(
        out.status.success(),
        "schedule alias failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // adapt with a coverage radius above 1 is a usage error, mirroring
    // the serve layer's typed bad_request.
    let out = Command::new(BIN)
        .args(["adapt"])
        .arg(&gpath)
        .args(["--hops", "2"])
        .output()
        .expect("run domatic adapt");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--hops"),
        "stderr should name the offending flag: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
