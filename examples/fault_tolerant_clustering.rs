//! Fault-tolerant clustering (paper §6): keep every node covered by k
//! dominators so single crashes never leave sensors unattended, and watch
//! what that costs in lifetime.
//!
//! ```text
//! cargo run --release --example fault_tolerant_clustering
//! ```

use domatic::core::solver::{FaultTolerantSolver, Solver, SolverConfig};
use domatic::netsim::{simulate, DomaticRotation, EnergyModel, FailureInjector, SimConfig};
use domatic::prelude::*;

fn main() {
    let n = 400;
    let b = 6u64;
    let g = graph::generators::gnp::gnp_with_avg_degree(n, 80.0, 3);
    let batteries = Batteries::uniform(n, b);
    println!("topology: {}", graph::properties::describe(&g));

    // Algorithm 3 for k = 1, 2, 3: the schedule's lifetime shrinks like
    // 1/k (Lemma 6.1), buying redundancy with lifetime.
    println!("\nAlgorithm 3 schedules (b = {b}):");
    println!(
        "{:<4} {:>16} {:>16} {:>12}",
        "k", "valid lifetime", "bound b(δ+1)/k", "ratio"
    );
    let solver = FaultTolerantSolver;
    for k in [1usize, 2, 3] {
        let cfg = SolverConfig::new().seed(17).trials(8).c(3.0).k(k);
        let sched = solver.schedule(&g, &batteries, &cfg).expect("schedule");
        schedule::validate_schedule(&g, &batteries, &sched, solver.tolerance(&cfg))
            .expect("validated prefix");
        let bound = solver.upper_bound(&g, &batteries, &cfg);
        println!(
            "{:<4} {:>16} {:>16} {:>12.2}",
            k,
            sched.lifetime(),
            bound,
            bound as f64 / sched.lifetime().max(1) as f64
        );
    }

    // Why pay for k = 2? Under random node crashes, a 1-dominating
    // rotation loses coverage at the first unlucky crash; the 2-dominating
    // rotation rides through single failures.
    println!("\ncrash injection (p = 0.003 per node per slot):");
    let partition = core::feige::feige_partition(&g, &core::feige::FeigeParams::default());
    let classes = partition.classes;
    for k in [1usize, 2] {
        // Merge k consecutive classes into k-dominating sets (Algorithm 3,
        // phase 2 construction).
        let merged: Vec<NodeSet> = classes
            .chunks(k)
            .filter(|ch| ch.len() == k)
            .map(|ch| {
                let mut m = NodeSet::new(n);
                for c in ch {
                    m.union_with(c);
                }
                m
            })
            .collect();
        let cfg = SimConfig {
            model: EnergyModel::standard(),
            k,
            max_slots: 1_000_000,
            switch_cost: 0.0,
        };
        let mut inj = FailureInjector::random(0.003, 11);
        let res = simulate(
            &g,
            &vec![b as f64; n],
            &mut DomaticRotation::new(merged, 1),
            &cfg,
            Some(&mut inj),
        );
        println!(
            "  k = {k}: survived {} slots, ended by {:?}",
            res.lifetime, res.end
        );
    }
}
