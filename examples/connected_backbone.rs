//! Connected dominating sets as routing backbones (the paper's §7 open
//! problem): build a rotation of *connected* dominating sets and compare
//! the connectivity tax against plain clustering.
//!
//! ```text
//! cargo run --release --example connected_backbone
//! ```

use domatic::core::cds::{connected_uniform_schedule, greedy_connected_partition};
use domatic::core::greedy::greedy_domatic_partition;
use domatic::core::uniform::UniformParams;
use domatic::graph::connected_domination::is_connected_dominating_set;
use domatic::prelude::*;
use domatic::schedule::validate_schedule;

fn main() {
    let n = 300;
    let b = 2u64;
    let g = graph::generators::gnp::gnp_with_avg_degree(n, 60.0, 21);
    println!("topology: {}", graph::properties::describe(&g));
    println!(
        "connected: {} (a routing backbone needs a CONNECTED dominating set)\n",
        graph::traversal::is_connected(&g)
    );

    // Plain vs connected greedy partitions: how many disjoint backbones
    // exist, and how much bigger each must be.
    let plain = greedy_domatic_partition(&g);
    let connected = greedy_connected_partition(&g);
    let mean =
        |cs: &[NodeSet]| cs.iter().map(|c| c.len()).sum::<usize>() as f64 / cs.len().max(1) as f64;
    println!(
        "plain greedy partition     : {} classes, mean size {:.1}",
        plain.len(),
        mean(&plain)
    );
    println!(
        "connected greedy partition : {} classes, mean size {:.1}",
        connected.len(),
        mean(&connected)
    );
    for (i, cds) in connected.iter().enumerate() {
        assert!(is_connected_dominating_set(&g, cds));
        if i < 3 {
            println!("  backbone {i}: {} nodes", cds.len());
        }
    }

    // The color-then-connect scheduler: Algorithm 1 classes, each repaired
    // into a backbone with connectors drawn from the remaining energy.
    let run = connected_uniform_schedule(&g, b, &UniformParams { c: 3.0, seed: 3 });
    let batteries = Batteries::uniform(n, b);
    validate_schedule(&g, &batteries, &run.schedule, 1).unwrap();
    println!(
        "\ncolor-then-connect schedule: lifetime {} ({} classes connected, {} unconnectable)",
        run.schedule.lifetime(),
        run.connected_classes,
        run.unconnectable_classes
    );
    println!("\nno approximation guarantee is known for maximum-lifetime connected");
    println!("clustering — the paper's §7 flags it as the key open problem; these are");
    println!("the natural heuristics, measured (see experiment E11).");
}
