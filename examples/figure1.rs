//! Walk through the paper's Figure 1 step by step: the 7-node instance,
//! the optimal schedule, and why lifetime 6 is the end of the road.
//!
//! ```text
//! cargo run --release --example figure1
//! ```

use domatic::lp::{branch_and_bound_lifetime, figure1_instance, lp_optimal_lifetime};
use domatic::prelude::*;
use domatic::schedule::{validate_schedule, EnergyLedger};

fn main() {
    let (g, b32) = figure1_instance();
    let batteries = Batteries::from_vec(b32.iter().map(|&x| x as u64).collect());
    println!("the Figure 1 instance: {}", graph::properties::describe(&g));
    println!("uniform battery b = {}", batteries.get(0));
    println!(
        "poor node v = 6: N⁺(v) = {{0, 1, 6}} holds {} units of energy ⇒ L_OPT ≤ 6 (Lemma 4.1)\n",
        3 * batteries.get(6)
    );

    // Exact optima, two independent solvers.
    let frac = lp_optimal_lifetime(&g, &batteries.to_f64(), 1_000_000).unwrap();
    let ilp = branch_and_bound_lifetime(&g, batteries.as_slice(), 1_000_000).unwrap();
    println!("fractional LP optimum : {:.3}", frac.lifetime);
    println!(
        "integral B&B optimum  : {} ({} B&B nodes)\n",
        ilp.lifetime, ilp.nodes_explored
    );

    // Replay the figure's three phases slot by slot, printing remaining
    // energy like the figure's node annotations.
    let schedule = Schedule::from_entries([
        (NodeSet::from_iter(7, [0u32, 3]), 2),
        (NodeSet::from_iter(7, [1u32, 4]), 2),
        (NodeSet::from_iter(7, [2u32, 5, 6]), 2),
    ]);
    validate_schedule(&g, &batteries, &schedule, 1).unwrap();
    let mut ledger = EnergyLedger::new(batteries.clone());
    let mut t = 0u64;
    for e in schedule.entries() {
        ledger.charge(&e.set, e.duration).unwrap();
        t += e.duration;
        let levels: Vec<String> = (0..7u32).map(|v| ledger.remaining(v).to_string()).collect();
        println!(
            "t = {t}: activated {:?} for {} slots — remaining energy [{}]",
            e.set.to_vec(),
            e.duration,
            levels.join(", ")
        );
    }
    println!(
        "\nat t = {t}, N⁺(v) = {{0, 1, 6}} remaining energy = [{}, {}, {}] — node v can",
        ledger.remaining(0),
        ledger.remaining(1),
        ledger.remaining(6)
    );
    println!("never be covered again; the schedule of lifetime 6 is optimal, as in the figure.");
}
