//! The algorithms as actual distributed protocols: run Algorithm 1 and 2
//! on the synchronous message-passing engine and print the communication
//! bill — the paper's "constant number of communication rounds" claim,
//! measured.
//!
//! ```text
//! cargo run --release --example distributed_protocol
//! ```

use domatic::distsim::protocols::general::distributed_general_schedule;
use domatic::distsim::protocols::uniform::distributed_uniform_schedule;
use domatic::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let b = 3u64;
    println!(
        "{:<10} {:>7} {:>7} {:>9} {:>9} {:>11} {:>10}",
        "protocol", "n", "rounds", "tx/node", "rx/node", "bytes/node", "lifetime"
    );
    for n in [500usize, 2000, 8000] {
        let gg = graph::generators::geometric::random_geometric(
            n,
            graph::generators::geometric::radius_for_avg_degree(n, 25.0),
            n as u64,
        );
        let g = gg.graph;

        // Algorithm 1: one round — each node broadcasts its degree once.
        let (raw, _, stats) = distributed_uniform_schedule(&g, b, 3.0, 1, 4);
        let batteries = Batteries::uniform(n, b);
        let valid = schedule::longest_valid_prefix(&g, &batteries, &raw, 1);
        println!(
            "{:<10} {:>7} {:>7} {:>9.2} {:>9.2} {:>11.2} {:>10}",
            "uniform",
            n,
            stats.rounds,
            stats.transmissions_per_node(n),
            stats.receptions_per_node(n),
            stats.bytes_received as f64 / n as f64,
            valid.lifetime()
        );

        // Algorithm 2: two rounds — batteries, then 2-hop summaries.
        let mut rng = StdRng::seed_from_u64(9);
        let nb = Batteries::from_vec((0..n).map(|_| rng.random_range(1..=5)).collect());
        let (raw2, _, stats2) = distributed_general_schedule(&g, &nb, 3.0, 1, 4);
        let valid2 = schedule::longest_valid_prefix(&g, &nb, &raw2, 1);
        println!(
            "{:<10} {:>7} {:>7} {:>9.2} {:>9.2} {:>11.2} {:>10}",
            "general",
            n,
            stats2.rounds,
            stats2.transmissions_per_node(n),
            stats2.receptions_per_node(n),
            stats2.bytes_received as f64 / n as f64,
            valid2.lifetime()
        );
    }
    println!("\nrounds and tx/node stay constant as n grows 16× — the paper's locality claim.");
}
