//! The general case (paper §5): heterogeneous batteries. Nodes joined the
//! network at different times or carry different cells; Algorithm 2 lets
//! each node buy activation slots in proportion to its remaining energy.
//!
//! ```text
//! cargo run --release --example nonuniform_batteries
//! ```

use domatic::core::solver::{GeneralSolver, Solver, SolverConfig};
use domatic::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 400;
    let g = graph::generators::gnp::gnp_with_avg_degree(n, 70.0, 13);
    // A bimodal fleet: 80% nearly-drained legacy nodes, 20% fresh ones.
    let mut rng = StdRng::seed_from_u64(5);
    let batteries = Batteries::from_vec(
        (0..n)
            .map(|_| {
                if rng.random::<f64>() < 0.8 {
                    rng.random_range(1..=2)
                } else {
                    rng.random_range(8..=12)
                }
            })
            .collect(),
    );
    println!("topology: {}", graph::properties::describe(&g));
    println!(
        "batteries: min {} max {} (bimodal fleet)",
        batteries.min(),
        batteries.max()
    );

    // Lemma 5.1: the energy coverage τ of the poorest neighborhood caps
    // every schedule.
    let tau = core::bounds::general_upper_bound(&g, &batteries);
    println!("Lemma 5.1 bound τ = {tau} slots");

    // Algorithm 2, with best-of-16 parallel restarts.
    let solver = GeneralSolver;
    let cfg = SolverConfig::new().seed(100).trials(16).c(3.0);
    let sched = solver.schedule(&g, &batteries, &cfg).expect("schedule");
    schedule::validate_schedule(&g, &batteries, &sched, solver.tolerance(&cfg))
        .expect("validated prefix");
    println!(
        "Algorithm 2 lifetime: {} slots (best of {} seeded restarts, ratio {:.2}, Theorem 5.3 allows O(log b_max·n) = O({:.1}))",
        sched.lifetime(),
        cfg.trials,
        tau as f64 / sched.lifetime().max(1) as f64,
        ((batteries.max() * n as u64) as f64).ln()
    );

    // Centralized greedy baseline for reference.
    let greedy = core::greedy::greedy_general_schedule(&g, &batteries);
    println!("centralized greedy baseline: {} slots", greedy.lifetime());

    // Show who carries the load: fresh nodes should serve most slots.
    let m = schedule::metrics::schedule_metrics(&sched, &batteries);
    println!(
        "mean awake/slot: {:.1}; battery utilization: {:.0}%; fairness (Jain): {:.2}",
        m.mean_active,
        100.0 * m.utilization,
        m.fairness
    );
}
