//! Quickstart: schedule a sensor field with Algorithm 1 and check the
//! result against the paper's bound.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use domatic::prelude::*;

fn main() {
    // A 500-node random geometric sensor field, densely deployed (average
    // degree ~200 — the regime the paper targets: δ ≫ ln n, so several
    // disjoint dominating sets exist). Every battery is good for 3 active
    // time slots.
    let n = 500;
    let b = 3u64;
    let gg = graph::generators::geometric::random_geometric(
        n,
        graph::generators::geometric::radius_for_avg_degree(n, 200.0),
        42,
    );
    let g = gg.graph;
    println!("topology: {}", graph::properties::describe(&g));

    // Algorithm 1 (uniform batteries): every node learns its neighbors'
    // degrees (one message round) and picks a random color; color classes
    // become consecutive dominating sets, each active for the full battery.
    let params = core::uniform::UniformParams::default();
    let (raw, coloring) = core::uniform::uniform_schedule(&g, b, &params);
    println!(
        "coloring: {} classes total, {} guaranteed by Lemma 4.2",
        coloring.num_classes, coloring.guaranteed_classes
    );

    // The guarantee is "with high probability" — validate and keep the
    // longest provably correct prefix (exactly what the analysis counts).
    let batteries = Batteries::uniform(g.n(), b);
    let valid = schedule::longest_valid_prefix(&g, &batteries, &raw, 1);

    let bound = core::bounds::uniform_upper_bound(&g, b);
    println!("validated lifetime: {} slots", valid.lifetime());
    println!("Lemma 4.1 upper bound b(δ+1): {bound} slots");
    println!(
        "gap: {:.2}× (Theorem 4.3 promises O(ln n) = O({:.1}))",
        bound as f64 / valid.lifetime().max(1) as f64,
        (g.n() as f64).ln()
    );

    // What the schedule means operationally: while class i is active, all
    // other nodes sleep, yet every node has an awake neighbor.
    let m = schedule::metrics::schedule_metrics(&valid, &batteries);
    println!(
        "mean awake nodes per slot: {:.1} of {} ({:.1}% asleep)",
        m.mean_active,
        g.n(),
        100.0 * (1.0 - m.mean_active / g.n() as f64)
    );
}
