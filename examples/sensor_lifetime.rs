//! The data-gathering scenario from the paper's introduction: compare
//! activation strategies on a simulated sensor network and see how much
//! lifetime dominating-set rotation buys.
//!
//! ```text
//! cargo run --release --example sensor_lifetime
//! ```

use domatic::netsim::{
    simulate, AllActive, DomaticRotation, EnergyModel, SimConfig, SingleMds, Strategy,
};
use domatic::prelude::*;

fn main() {
    let n = 400;
    let g = graph::generators::gnp::gnp_with_avg_degree(n, 80.0, 7);
    let capacity = 30.0; // slots of active duty per battery
    let energies = vec![capacity; n];
    let cfg = SimConfig {
        model: EnergyModel::standard(),
        k: 1,
        max_slots: 1_000_000,
        switch_cost: 0.0,
    };
    println!("topology: {}", graph::properties::describe(&g));
    println!("battery: {capacity} units, active costs 1/slot, sleep 0.01/slot\n");

    // Build the paper's rotation: a repaired random coloring whose classes
    // are disjoint dominating sets.
    let partition = core::feige::feige_partition(&g, &core::feige::FeigeParams::default());
    println!(
        "domatic partition: {} disjoint dominating sets (target {})",
        partition.classes.len(),
        partition.target
    );

    let mut strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(AllActive),
        Box::new(SingleMds::static_once()),
        Box::new(SingleMds::new()),
        Box::new(DomaticRotation::new(partition.classes, 1)),
    ];

    println!(
        "\n{:<22} {:>10} {:>12} {:>12}",
        "strategy", "lifetime", "delivered", "mean awake"
    );
    for s in strategies.iter_mut() {
        let name = s.name();
        let res = simulate(&g, &energies, s.as_mut(), &cfg, None);
        println!(
            "{:<22} {:>10} {:>12} {:>12.1}",
            name, res.lifetime, res.delivered, res.mean_active
        );
    }
    println!("\nthe domatic rotation multiplies lifetime by ≈ the number of disjoint");
    println!("dominating sets — the paper's core argument for lifetime-aware clustering.");
}
