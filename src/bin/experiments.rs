//! The experiment harness CLI.
//!
//! ```text
//! experiments                      # list experiments
//! experiments all                  # run the full suite
//! experiments e1 e6                # run selected experiments
//! experiments e1 --json out.json   # also write machine-readable results
//! experiments all --threads 4      # size the global thread pool
//! ```
//!
//! Every table printed here corresponds to a row of DESIGN.md §3 and is
//! recorded in EXPERIMENTS.md. With `--json <path>`, each experiment
//! additionally appends one JSON object (one line) to `path`:
//!
//! ```text
//! {"experiment": "e1", "wall_ms": 12.3,
//!  "tables": [{"title", "headers", "rows", "notes"}, …],
//!  "run_stats": {"rounds", "transmissions", "receptions", "bytes_received"},
//!  "telemetry": {"counters", "histograms", "spans"}}
//! ```
//!
//! `run_stats` totals the distributed-protocol communication cost of the
//! experiment (zeros when it ran no protocol); `telemetry.spans` carries
//! wall-clock totals per instrumented code path. The file is the format
//! committed as `BENCH_*.json`; see README §Observability for jq recipes.

use domatic::experiments::{registry, run_by_id};
use domatic_distsim::RunStats;
use domatic_telemetry as telemetry;
use domatic_telemetry::json::Json;
use std::io::Write;
use std::time::Instant;

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            match args.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                }
            }
        } else if a == "--threads" {
            let n: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--threads requires a positive integer");
                std::process::exit(2);
            });
            if rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build_global()
                .is_err()
            {
                eprintln!("--threads: thread pool already initialized; flag ignored");
            }
        } else {
            ids.push(a);
        }
    }
    // Recorded as a gauge (not a counter) so per-experiment registry
    // resets keep it: every JSON record then states the pool size that
    // produced it.
    telemetry::global().set_gauge("runtime.threads", rayon::current_num_threads() as u64);
    if ids.is_empty() {
        println!(
            "domatic experiment harness — reproduction of Moscibroda & Wattenhofer, IPDPS 2005\n"
        );
        println!("usage: experiments <id>... | all [--json <path>] [--threads N]\n");
        for e in registry() {
            println!("  {:4}  {}", e.id, e.summary);
        }
        return;
    }
    if ids.iter().any(|a| a == "all") {
        ids = registry().iter().map(|e| e.id.to_string()).collect();
    }

    let mut json_out = json_path.map(|p| {
        let f = std::fs::File::create(&p).unwrap_or_else(|e| panic!("cannot create {p}: {e}"));
        // Span timing is only worth paying for when someone records it.
        telemetry::set_enabled(true);
        std::io::BufWriter::new(f)
    });

    for id in ids {
        telemetry::global().reset();
        let start = Instant::now();
        // Scoped so the span closes (and records) before the snapshot:
        // every JSON record then carries at least the "experiment" span's
        // wall-clock total, with instrumented code paths nested under it.
        let result = {
            let _span = telemetry::span!("experiment");
            run_by_id(&id)
        };
        match result {
            Some(tables) => {
                let wall = start.elapsed();
                for t in &tables {
                    println!("{}", t.render());
                }
                println!("[{} finished in {:.1?}]\n", id, wall);
                if let Some(out) = json_out.as_mut() {
                    let snapshot = telemetry::global().snapshot();
                    let run_stats = RunStats::from(telemetry::global());
                    let record = Json::obj([
                        ("experiment".into(), Json::Str(id.clone())),
                        ("wall_ms".into(), Json::Num(wall.as_secs_f64() * 1e3)),
                        (
                            "tables".into(),
                            Json::Arr(tables.iter().map(|t| t.to_json()).collect()),
                        ),
                        ("run_stats".into(), run_stats_json(&run_stats)),
                        ("telemetry".into(), snapshot.to_json()),
                    ]);
                    writeln!(out, "{}", record.render()).expect("write json line");
                }
            }
            None => {
                eprintln!("unknown experiment '{id}' — run with no arguments for the list");
                std::process::exit(2);
            }
        }
    }
    if let Some(mut out) = json_out {
        out.flush().expect("flush json output");
    }
}

/// The `run_stats` object: always emits all four keys, so consumers can
/// rely on `.run_stats.rounds` existing even for purely local experiments.
fn run_stats_json(s: &RunStats) -> Json {
    Json::obj([
        ("rounds".into(), Json::Int(s.rounds as i128)),
        ("transmissions".into(), Json::Int(s.transmissions as i128)),
        ("receptions".into(), Json::Int(s.receptions as i128)),
        ("bytes_received".into(), Json::Int(s.bytes_received as i128)),
    ])
}
