//! The experiment harness CLI.
//!
//! ```text
//! experiments              # list experiments
//! experiments all          # run the full suite
//! experiments e1 e6        # run selected experiments
//! ```
//!
//! Every table printed here corresponds to a row of DESIGN.md §3 and is
//! recorded in EXPERIMENTS.md.

use domatic::experiments::{registry, run_by_id};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        println!("domatic experiment harness — reproduction of Moscibroda & Wattenhofer, IPDPS 2005\n");
        println!("usage: experiments <id>... | all\n");
        for e in registry() {
            println!("  {:4}  {}", e.id, e.summary);
        }
        return;
    }
    let ids: Vec<String> = if args.iter().any(|a| a == "all") {
        registry().iter().map(|e| e.id.to_string()).collect()
    } else {
        args
    };
    for id in ids {
        let start = Instant::now();
        match run_by_id(&id) {
            Some(tables) => {
                for t in tables {
                    println!("{}", t.render());
                }
                println!("[{} finished in {:.1?}]\n", id, start.elapsed());
            }
            None => {
                eprintln!("unknown experiment '{id}' — run with no arguments for the list");
                std::process::exit(2);
            }
        }
    }
}
