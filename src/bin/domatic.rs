//! `domatic` — command-line front end: run the lifetime schedulers on an
//! edge-list topology file.
//!
//! ```text
//! domatic info <graph.txt>
//! domatic schedule <graph.txt> [--b N] [--k K] [--alg uniform|general|greedy|ft] \
//!                  [--seed S] [--trials R] [--verbose] [--out schedule.txt]
//! domatic validate <graph.txt> <schedule.txt> [--b N] [--k K]
//! domatic partition <graph.txt> [--alg greedy|feige|augmented]
//! domatic simulate <graph.txt> [--b N] [--k K]
//! domatic render <graph.txt> --out fig.svg [--alg greedy|feige|augmented]
//! domatic optimum <graph.txt> [--b N]      # exact LP, small graphs only
//! ```
//!
//! The graph format is `domatic_graph::io`'s: a `n <count>` header then
//! one `u v` edge per line (`#` comments allowed).
//!
//! Every subcommand additionally accepts `--trace` (enables span timing
//! and prints the telemetry snapshot — counters plus the nested span tree
//! — after the subcommand finishes) and `--threads N` (sizes the global
//! thread pool; defaults to `RAYON_NUM_THREADS` or the available cores).

use domatic::core::bounds::{fault_tolerant_upper_bound, general_upper_bound};
use domatic::core::stochastic::{best_fault_tolerant, best_general, best_uniform};
use domatic::core::greedy::greedy_general_schedule;
use domatic::lp::lp_optimal_lifetime;
use domatic::prelude::*;
use domatic::schedule::compact::render;
use domatic::schedule::metrics::schedule_metrics;
use domatic::schedule::validate_schedule;

fn usage() -> ! {
    eprintln!(
        "usage:\n  domatic info <graph.txt>\n  domatic schedule <graph.txt> [--b N] [--k K] [--alg uniform|general|greedy|ft] [--seed S] [--trials R] [--verbose] [--gantt] [--out schedule.txt]\n  domatic validate <graph.txt> <schedule.txt> [--b N] [--k K]\n  domatic partition <graph.txt> [--alg greedy|feige|augmented] [--seed S]\n  domatic simulate <graph.txt> [--b N] [--k K] [--seed S]\n  domatic render <graph.txt> --out fig.svg [--alg greedy|feige|augmented]\n  domatic optimum <graph.txt> [--b N]\nany subcommand also takes --trace (print timing spans and counters on exit) and --threads N (thread-pool size; default RAYON_NUM_THREADS or all cores)"
    );
    std::process::exit(2)
}

fn load_graph(path: &str) -> Graph {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    domatic::graph::io::parse_edge_list(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    })
}

struct Opts {
    b: u64,
    k: usize,
    alg: String,
    seed: u64,
    trials: u64,
    verbose: bool,
    gantt: bool,
    out: Option<String>,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        b: 3,
        k: 1,
        alg: "uniform".into(),
        seed: 0,
        trials: 8,
        verbose: false,
        gantt: false,
        out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--b" => o.b = next("--b").parse().unwrap_or_else(|_| usage()),
            "--k" => o.k = next("--k").parse().unwrap_or_else(|_| usage()),
            "--alg" => o.alg = next("--alg"),
            "--seed" => o.seed = next("--seed").parse().unwrap_or_else(|_| usage()),
            "--trials" => o.trials = next("--trials").parse().unwrap_or_else(|_| usage()),
            "--verbose" => o.verbose = true,
            "--gantt" => o.gantt = true,
            "--out" => o.out = Some(next("--out")),
            _ => usage(),
        }
    }
    o
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = args.iter().any(|a| a == "--trace");
    if trace {
        args.retain(|a| a != "--trace");
        domatic_telemetry::set_enabled(true);
    }
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let n: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--threads needs a positive integer");
                std::process::exit(2);
            });
        args.drain(i..=i + 1);
        if rayon::ThreadPoolBuilder::new().num_threads(n).build_global().is_err() {
            eprintln!("--threads: thread pool already initialized; flag ignored");
        }
    }
    domatic_telemetry::global()
        .set_gauge("runtime.threads", rayon::current_num_threads() as u64);
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.clone(), r.to_vec()),
        None => usage(),
    };
    run_command(&cmd, &rest);
    if trace {
        use domatic_telemetry::Sink;
        let snapshot = domatic_telemetry::global().snapshot();
        let mut sink = domatic_telemetry::TableSink::new(std::io::stderr());
        sink.emit(&cmd, &snapshot).expect("write trace");
    }
}

fn run_command(cmd: &str, rest: &[String]) {
    let rest = rest.to_vec();
    match cmd {
        "info" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let g = load_graph(path);
            println!("{}", domatic::graph::properties::describe(&g));
            println!(
                "connected: {}",
                domatic::graph::traversal::is_connected(&g)
            );
            if let Some(delta) = g.min_degree() {
                println!("domatic number upper bound (δ+1): {}", delta + 1);
            }
            let dec = domatic::graph::kcore::core_decomposition(&g);
            println!(
                "degeneracy (max core): {} — scheduling headroom of the bulk vs δ's certificate",
                dec.degeneracy
            );
            if g.n() <= 150 {
                let kappa = domatic::graph::flow::vertex_connectivity(&g);
                println!(
                    "vertex connectivity κ: {kappa} — ceiling for CONNECTED domatic partitions"
                );
            }
        }
        "schedule" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let o = parse_opts(&rest[1..]);
            let g = load_graph(path);
            let batteries = Batteries::uniform(g.n(), o.b);
            let (schedule, label, bound) = match o.alg.as_str() {
                "uniform" => {
                    let (s, seed) = best_uniform(&g, o.b, 3.0, o.trials, o.seed);
                    (s, format!("Algorithm 1 (seed {seed})"), general_upper_bound(&g, &batteries))
                }
                "general" => {
                    let (s, seed) = best_general(&g, &batteries, 3.0, o.trials, o.seed);
                    (s, format!("Algorithm 2 (seed {seed})"), general_upper_bound(&g, &batteries))
                }
                "greedy" => (
                    greedy_general_schedule(&g, &batteries),
                    "greedy baseline".to_string(),
                    general_upper_bound(&g, &batteries),
                ),
                "ft" => {
                    let (s, seed) = best_fault_tolerant(&g, o.b, o.k, 3.0, o.trials, o.seed);
                    (
                        s,
                        format!("Algorithm 3, k = {} (seed {seed})", o.k),
                        fault_tolerant_upper_bound(&g, o.b, o.k),
                    )
                }
                _ => usage(),
            };
            validate_schedule(&g, &batteries, &schedule, o.k).unwrap_or_else(|v| {
                eprintln!("internal error: emitted schedule invalid: {v}");
                std::process::exit(1);
            });
            println!("{label}: lifetime {} (upper bound {bound})", schedule.lifetime());
            let m = schedule_metrics(&schedule, &batteries);
            println!(
                "steps {} | mean awake {:.1} | utilization {:.0}% | fairness {:.2}",
                m.steps,
                m.mean_active,
                100.0 * m.utilization,
                m.fairness
            );
            if o.verbose {
                println!("{}", render(&schedule));
            }
            if o.gantt {
                print!("{}", domatic::schedule::compact::render_gantt(&schedule, g.n()));
            }
            if let Some(path) = &o.out {
                let text = domatic::schedule::io::to_text(&schedule, g.n());
                std::fs::write(path, text).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                });
                println!("wrote {path}");
            }
        }
        "validate" => {
            let (gpath, spath) = match (rest.first(), rest.get(1)) {
                (Some(a), Some(b)) => (a.clone(), b.clone()),
                _ => usage(),
            };
            let o = parse_opts(&rest[2..]);
            let g = load_graph(&gpath);
            let text = std::fs::read_to_string(&spath).unwrap_or_else(|e| {
                eprintln!("cannot read {spath}: {e}");
                std::process::exit(1);
            });
            let (schedule, universe) =
                domatic::schedule::io::from_text(&text).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                });
            if universe != g.n() {
                eprintln!("schedule universe {universe} != graph size {}", g.n());
                std::process::exit(1);
            }
            let batteries = Batteries::uniform(g.n(), o.b);
            match validate_schedule(&g, &batteries, &schedule, o.k) {
                Ok(()) => println!(
                    "VALID: lifetime {} at tolerance k = {} within b = {}",
                    schedule.lifetime(),
                    o.k,
                    o.b
                ),
                Err(v) => {
                    println!("INVALID: {v}");
                    std::process::exit(3);
                }
            }
        }
        "partition" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let o = parse_opts(&rest[1..]);
            let g = load_graph(path);
            use domatic::core::augment::augment_partition;
            use domatic::core::feige::{feige_partition, FeigeParams};
            use domatic::core::greedy::greedy_domatic_partition;
            let classes = match o.alg.as_str() {
                // "uniform" is parse_opts' default; map it to greedy here.
                "greedy" | "uniform" => greedy_domatic_partition(&g),
                "feige" => {
                    feige_partition(&g, &FeigeParams { c: 3.0, max_sweeps: 60, seed: o.seed })
                        .classes
                }
                "augmented" => {
                    augment_partition(&g, greedy_domatic_partition(&g)).classes
                }
                _ => usage(),
            };
            println!(
                "{} disjoint dominating sets (δ+1 ceiling: {})",
                classes.len(),
                g.min_degree().map_or(0, |d| d + 1)
            );
            for (i, c) in classes.iter().enumerate() {
                if o.verbose {
                    println!("  class {i}: {:?}", c.to_vec());
                } else if i < 5 {
                    println!("  class {i}: {} nodes", c.len());
                }
            }
            if !o.verbose && classes.len() > 5 {
                println!("  … ({} more; --verbose for members)", classes.len() - 5);
            }
        }
        "simulate" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let o = parse_opts(&rest[1..]);
            let g = load_graph(path);
            use domatic::core::greedy::greedy_domatic_partition;
            use domatic::netsim::{
                simulate, AllActive, DomaticRotation, EnergyModel, SimConfig, SingleMds,
                Strategy,
            };
            let cfg = SimConfig {
                model: EnergyModel::standard(),
                k: o.k,
                max_slots: 1_000_000,
                switch_cost: 0.0,
            };
            let energies = vec![o.b as f64; g.n()];
            let classes = greedy_domatic_partition(&g);
            let mut strategies: Vec<Box<dyn Strategy>> = vec![
                Box::new(AllActive),
                Box::new(SingleMds::static_once()),
                Box::new(DomaticRotation::new(classes, 1)),
            ];
            println!(
                "{:<22} {:>10} {:>12} {:>12}",
                "strategy", "lifetime", "delivered", "mean awake"
            );
            for s in strategies.iter_mut() {
                let name = s.name();
                let res = simulate(&g, &energies, s.as_mut(), &cfg, None);
                println!(
                    "{:<22} {:>10} {:>12} {:>12.1}",
                    name, res.lifetime, res.delivered, res.mean_active
                );
            }
        }
        "render" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let o = parse_opts(&rest[1..]);
            let Some(out) = &o.out else {
                eprintln!("render needs --out <file.svg>");
                std::process::exit(2);
            };
            let g = load_graph(path);
            use domatic::core::augment::augment_partition;
            use domatic::core::feige::{feige_partition, FeigeParams};
            use domatic::core::greedy::greedy_domatic_partition;
            let classes = match o.alg.as_str() {
                "greedy" | "uniform" => greedy_domatic_partition(&g),
                "feige" => {
                    feige_partition(&g, &FeigeParams { c: 3.0, max_sweeps: 60, seed: o.seed })
                        .classes
                }
                "augmented" => augment_partition(&g, greedy_domatic_partition(&g)).classes,
                _ => usage(),
            };
            let layout = domatic::viz::spring(&g, 80);
            let svg = domatic::viz::render_topology(
                &g,
                &layout,
                &classes,
                &domatic::viz::TopologyStyle::default(),
            );
            std::fs::write(out, svg).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(1);
            });
            println!("wrote {out} ({} classes)", classes.len());
        }
        "optimum" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let o = parse_opts(&rest[1..]);
            let g = load_graph(path);
            if g.n() > 24 {
                eprintln!(
                    "optimum enumerates minimal dominating sets; {} nodes is too many (max 24)",
                    g.n()
                );
                std::process::exit(1);
            }
            match lp_optimal_lifetime(&g, &vec![o.b as f64; g.n()], 5_000_000) {
                Ok(opt) => {
                    println!("exact L_OPT = {:.3}", opt.lifetime);
                    for (set, t) in &opt.schedule {
                        println!("  {set:?} × {t:.3}");
                    }
                }
                Err(e) => {
                    eprintln!("exact solve failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
