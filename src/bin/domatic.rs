//! `domatic` — command-line front end: run the lifetime schedulers on an
//! edge-list topology file.
//!
//! ```text
//! domatic info <graph.txt>
//! domatic schedule <graph.txt> [--b N] [--k K] [--alg <solver>] \
//!                  [--seed S] [--trials R] [--verbose] [--out schedule.txt]
//! domatic validate <graph.txt> <schedule.txt> [--b N] [--k K]
//! domatic partition <graph.txt> [--alg greedy|feige|augmented]
//! domatic simulate <graph.txt> [--b N] [--k K]
//! domatic adapt <graph.txt> [--b N] [--k K] [--alg <solver>] [--seed S] \
//!               [--failures none|crash|battery-noise|transient-loss|all] \
//!               [--p P] [--slots N] [--retries N] [--drift N] [--json]
//! domatic render <graph.txt> --out fig.svg [--alg greedy|feige|augmented]
//! domatic optimum <graph.txt> [--b N]      # exact LP, small graphs only
//! ```
//!
//! `<solver>` is any name from `domatic_core::solver::solver_registry()`
//! (`uniform`, `general`, `greedy`, `ft`); an unknown name lists what is
//! available. The graph format is `domatic_graph::io`'s: a `n <count>`
//! header then one `u v` edge per line (`#` comments allowed).
//!
//! Every subcommand additionally accepts `--trace` (enables span timing
//! and prints the telemetry snapshot — counters plus the nested span tree
//! — after the subcommand finishes) and `--threads N` (sizes the global
//! thread pool; defaults to `RAYON_NUM_THREADS` or the available cores).

use domatic::core::solver::{make_solver, solver_registry, Solver, SolverConfig};
use domatic::netsim::{
    compare_static_adaptive, AdaptiveConfig, FailureModel, FailurePlan, FollowSchedule,
};
use domatic::prelude::*;
use domatic::lp::lp_optimal_lifetime;
use domatic::schedule::compact::render;
use domatic::schedule::metrics::schedule_metrics;
use domatic::schedule::validate_schedule;

fn usage() -> ! {
    eprintln!(
        "usage:\n  domatic info <graph.txt>\n  domatic schedule <graph.txt> [--b N] [--k K] [--alg SOLVER] [--seed S] [--trials R] [--verbose] [--gantt] [--out schedule.txt]\n  domatic validate <graph.txt> <schedule.txt> [--b N] [--k K]\n  domatic partition <graph.txt> [--alg greedy|feige|augmented] [--seed S]\n  domatic simulate <graph.txt> [--b N] [--k K] [--seed S]\n  domatic adapt <graph.txt> [--b N] [--k K] [--alg SOLVER] [--seed S] [--trials R] [--failures none|crash|battery-noise|transient-loss|all] [--p P] [--slots N] [--retries N] [--drift N] [--json]\n  domatic render <graph.txt> --out fig.svg [--alg greedy|feige|augmented]\n  domatic optimum <graph.txt> [--b N]\nSOLVER is one of: {}\nany subcommand also takes --trace (print timing spans and counters on exit) and --threads N (thread-pool size; default RAYON_NUM_THREADS or all cores)",
        domatic::core::solver::solver_names().join("|")
    );
    std::process::exit(2)
}

fn load_graph(path: &str) -> Graph {
    domatic::core::io::load_graph(path).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

/// Resolves `--alg` through the solver registry; an unknown name exits
/// with the registry's own "known solvers" message.
fn resolve_solver(name: &str) -> Box<dyn Solver> {
    make_solver(name).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

struct Opts {
    b: u64,
    k: usize,
    alg: String,
    seed: u64,
    trials: u64,
    verbose: bool,
    gantt: bool,
    out: Option<String>,
    failures: String,
    p: f64,
    slots: u64,
    retries: u32,
    drift: u64,
    json: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        b: 3,
        k: 1,
        alg: "uniform".into(),
        seed: 0,
        trials: 8,
        verbose: false,
        gantt: false,
        out: None,
        failures: "crash".into(),
        p: 0.02,
        slots: 10_000,
        retries: 2,
        drift: 2,
        json: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--b" => o.b = next("--b").parse().unwrap_or_else(|_| usage()),
            "--k" => o.k = next("--k").parse().unwrap_or_else(|_| usage()),
            "--alg" => o.alg = next("--alg"),
            "--seed" => o.seed = next("--seed").parse().unwrap_or_else(|_| usage()),
            "--trials" => o.trials = next("--trials").parse().unwrap_or_else(|_| usage()),
            "--verbose" => o.verbose = true,
            "--gantt" => o.gantt = true,
            "--out" => o.out = Some(next("--out")),
            "--failures" => o.failures = next("--failures"),
            "--p" => o.p = next("--p").parse().unwrap_or_else(|_| usage()),
            "--slots" => o.slots = next("--slots").parse().unwrap_or_else(|_| usage()),
            "--retries" => o.retries = next("--retries").parse().unwrap_or_else(|_| usage()),
            "--drift" => o.drift = next("--drift").parse().unwrap_or_else(|_| usage()),
            "--json" => o.json = true,
            _ => usage(),
        }
    }
    o
}

fn solver_config(o: &Opts) -> SolverConfig {
    SolverConfig::new().seed(o.seed).trials(o.trials).k(o.k)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = args.iter().any(|a| a == "--trace");
    if trace {
        args.retain(|a| a != "--trace");
        domatic_telemetry::set_enabled(true);
    }
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let n: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--threads needs a positive integer");
                std::process::exit(2);
            });
        args.drain(i..=i + 1);
        if rayon::ThreadPoolBuilder::new().num_threads(n).build_global().is_err() {
            eprintln!("--threads: thread pool already initialized; flag ignored");
        }
    }
    domatic_telemetry::global()
        .set_gauge("runtime.threads", rayon::current_num_threads() as u64);
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.clone(), r.to_vec()),
        None => usage(),
    };
    run_command(&cmd, &rest);
    if trace {
        use domatic_telemetry::Sink;
        let snapshot = domatic_telemetry::global().snapshot();
        let mut sink = domatic_telemetry::TableSink::new(std::io::stderr());
        sink.emit(&cmd, &snapshot).expect("write trace");
    }
}

fn run_command(cmd: &str, rest: &[String]) {
    let rest = rest.to_vec();
    match cmd {
        "info" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let g = load_graph(path);
            println!("{}", domatic::graph::properties::describe(&g));
            println!(
                "connected: {}",
                domatic::graph::traversal::is_connected(&g)
            );
            if let Some(delta) = g.min_degree() {
                println!("domatic number upper bound (δ+1): {}", delta + 1);
            }
            let dec = domatic::graph::kcore::core_decomposition(&g);
            println!(
                "degeneracy (max core): {} — scheduling headroom of the bulk vs δ's certificate",
                dec.degeneracy
            );
            if g.n() <= 150 {
                let kappa = domatic::graph::flow::vertex_connectivity(&g);
                println!(
                    "vertex connectivity κ: {kappa} — ceiling for CONNECTED domatic partitions"
                );
            }
        }
        "schedule" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let o = parse_opts(&rest[1..]);
            let g = load_graph(path);
            let batteries = Batteries::uniform(g.n(), o.b);
            let solver = resolve_solver(&o.alg);
            let cfg = solver_config(&o);
            let schedule = solver.schedule(&g, &batteries, &cfg).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            let tolerance = solver.tolerance(&cfg);
            let bound = solver.upper_bound(&g, &batteries, &cfg);
            validate_schedule(&g, &batteries, &schedule, tolerance).unwrap_or_else(|v| {
                eprintln!("internal error: emitted schedule invalid: {v}");
                std::process::exit(1);
            });
            println!(
                "{}: lifetime {} (upper bound {bound})",
                solver.describe(),
                schedule.lifetime()
            );
            let m = schedule_metrics(&schedule, &batteries);
            println!(
                "steps {} | mean awake {:.1} | utilization {:.0}% | fairness {:.2}",
                m.steps,
                m.mean_active,
                100.0 * m.utilization,
                m.fairness
            );
            if o.verbose {
                println!("{}", render(&schedule));
            }
            if o.gantt {
                print!("{}", domatic::schedule::compact::render_gantt(&schedule, g.n()));
            }
            if let Some(path) = &o.out {
                let text = domatic::schedule::io::to_text(&schedule, g.n());
                std::fs::write(path, text).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                });
                println!("wrote {path}");
            }
        }
        "validate" => {
            let (gpath, spath) = match (rest.first(), rest.get(1)) {
                (Some(a), Some(b)) => (a.clone(), b.clone()),
                _ => usage(),
            };
            let o = parse_opts(&rest[2..]);
            let g = load_graph(&gpath);
            let (schedule, universe) =
                domatic::core::io::load_schedule(&spath).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                });
            if universe != g.n() {
                eprintln!("schedule universe {universe} != graph size {}", g.n());
                std::process::exit(1);
            }
            let batteries = Batteries::uniform(g.n(), o.b);
            match validate_schedule(&g, &batteries, &schedule, o.k) {
                Ok(()) => println!(
                    "VALID: lifetime {} at tolerance k = {} within b = {}",
                    schedule.lifetime(),
                    o.k,
                    o.b
                ),
                Err(v) => {
                    println!("INVALID: {v}");
                    std::process::exit(3);
                }
            }
        }
        "partition" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let o = parse_opts(&rest[1..]);
            let g = load_graph(path);
            use domatic::core::augment::augment_partition;
            use domatic::core::feige::{feige_partition, FeigeParams};
            use domatic::core::greedy::greedy_domatic_partition;
            let classes = match o.alg.as_str() {
                // "uniform" is parse_opts' default; map it to greedy here.
                "greedy" | "uniform" => greedy_domatic_partition(&g),
                "feige" => {
                    feige_partition(&g, &FeigeParams { c: 3.0, max_sweeps: 60, seed: o.seed })
                        .classes
                }
                "augmented" => {
                    augment_partition(&g, greedy_domatic_partition(&g)).classes
                }
                _ => usage(),
            };
            println!(
                "{} disjoint dominating sets (δ+1 ceiling: {})",
                classes.len(),
                g.min_degree().map_or(0, |d| d + 1)
            );
            for (i, c) in classes.iter().enumerate() {
                if o.verbose {
                    println!("  class {i}: {:?}", c.to_vec());
                } else if i < 5 {
                    println!("  class {i}: {} nodes", c.len());
                }
            }
            if !o.verbose && classes.len() > 5 {
                println!("  … ({} more; --verbose for members)", classes.len() - 5);
            }
        }
        "simulate" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let o = parse_opts(&rest[1..]);
            let g = load_graph(path);
            use domatic::core::greedy::greedy_domatic_partition;
            use domatic::netsim::{
                simulate, AllActive, DomaticRotation, EnergyModel, SimConfig, SingleMds,
                Strategy,
            };
            let cfg = SimConfig {
                model: EnergyModel::standard(),
                k: o.k,
                max_slots: 1_000_000,
                switch_cost: 0.0,
            };
            let energies = vec![o.b as f64; g.n()];
            let batteries = Batteries::uniform(g.n(), o.b);
            let scfg = solver_config(&o);
            let classes = greedy_domatic_partition(&g);
            let mut strategies: Vec<Box<dyn Strategy>> = vec![
                Box::new(AllActive),
                Box::new(SingleMds::static_once()),
                Box::new(DomaticRotation::new(classes, 1)),
            ];
            // One schedule-playback row per registered solver.
            let mut labels: Vec<String> =
                strategies.iter().map(|s| s.name().to_string()).collect();
            for solver in solver_registry() {
                match solver.schedule(&g, &batteries, &scfg) {
                    Ok(s) => {
                        labels.push(format!("schedule[{}]", solver.name()));
                        strategies.push(Box::new(FollowSchedule::new(s)));
                    }
                    Err(e) => eprintln!("skipping {}: {e}", solver.name()),
                }
            }
            println!(
                "{:<22} {:>10} {:>12} {:>12}",
                "strategy", "lifetime", "delivered", "mean awake"
            );
            for (label, s) in labels.iter().zip(strategies.iter_mut()) {
                let res = simulate(&g, &energies, s.as_mut(), &cfg, None);
                println!(
                    "{:<22} {:>10} {:>12} {:>12.1}",
                    label, res.lifetime, res.delivered, res.mean_active
                );
            }
        }
        "adapt" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let o = parse_opts(&rest[1..]);
            let g = load_graph(path);
            let batteries = Batteries::uniform(g.n(), o.b);
            let solver = resolve_solver(&o.alg);
            let scfg = solver_config(&o);
            let Some(models) = FailureModel::parse(&o.failures, o.p) else {
                eprintln!(
                    "unknown failure model '{}'; use none|crash|battery-noise|transient-loss|all",
                    o.failures
                );
                std::process::exit(2);
            };
            let plan = FailurePlan::draw(&models, g.n(), o.slots, o.seed);
            let acfg = AdaptiveConfig {
                k: o.k,
                drift_tolerance: o.drift,
                max_retries: o.retries,
                max_slots: o.slots,
                max_replans: 64,
                record_curve: true,
            };
            let cmp = compare_static_adaptive(&g, &batteries, solver.as_ref(), &scfg, &acfg, &plan)
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                });
            let (crashes, drains, losses) = plan.event_counts();
            if o.json {
                // Hand-rendered with a fixed field order so two same-seed
                // runs emit byte-identical output.
                let curve: Vec<String> = cmp
                    .adaptive
                    .coverage_curve
                    .iter()
                    .map(|p| {
                        format!(
                            "{{\"slot\":{},\"covered\":{},\"alive\":{}}}",
                            p.slot, p.covered, p.alive
                        )
                    })
                    .collect();
                println!(
                    "{{\"n\":{},\"alg\":\"{}\",\"failures\":\"{}\",\"p\":{:?},\"seed\":{},\"b\":{},\"k\":{},\"planned\":{},\"crashes\":{crashes},\"drains\":{drains},\"losses\":{losses},\"static_lifetime\":{},\"static_end\":\"{}\",\"adaptive_lifetime\":{},\"adaptive_end\":\"{}\",\"delta\":{},\"replans\":{},\"retries\":{},\"deaths\":{},\"coverage_curve\":[{}]}}",
                    g.n(),
                    solver.name(),
                    o.failures,
                    o.p,
                    o.seed,
                    o.b,
                    o.k,
                    cmp.planned,
                    cmp.static_run.lifetime,
                    cmp.static_run.end.label(),
                    cmp.adaptive.lifetime,
                    cmp.adaptive.end.label(),
                    cmp.delta(),
                    cmp.adaptive.replans,
                    cmp.adaptive.retries,
                    cmp.adaptive.deaths,
                    curve.join(",")
                );
            } else {
                println!(
                    "{} | failures {} (p = {}) | {} crashes, {} double drains, {} losses drawn",
                    solver.describe(),
                    o.failures,
                    o.p,
                    crashes,
                    drains,
                    losses
                );
                println!(
                    "planned lifetime {} | static survives {} ({}) | adaptive survives {} ({})",
                    cmp.planned,
                    cmp.static_run.lifetime,
                    cmp.static_run.end.label(),
                    cmp.adaptive.lifetime,
                    cmp.adaptive.end.label()
                );
                println!(
                    "delta +{} slots | {} replans | {} retries | {} deaths",
                    cmp.delta().max(0),
                    cmp.adaptive.replans,
                    cmp.adaptive.retries,
                    cmp.adaptive.deaths
                );
                if o.verbose {
                    for p in &cmp.adaptive.coverage_curve {
                        println!("  slot {:>6}: {}/{} covered", p.slot, p.covered, p.alive);
                    }
                }
            }
        }
        "render" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let o = parse_opts(&rest[1..]);
            let Some(out) = &o.out else {
                eprintln!("render needs --out <file.svg>");
                std::process::exit(2);
            };
            let g = load_graph(path);
            use domatic::core::augment::augment_partition;
            use domatic::core::feige::{feige_partition, FeigeParams};
            use domatic::core::greedy::greedy_domatic_partition;
            let classes = match o.alg.as_str() {
                "greedy" | "uniform" => greedy_domatic_partition(&g),
                "feige" => {
                    feige_partition(&g, &FeigeParams { c: 3.0, max_sweeps: 60, seed: o.seed })
                        .classes
                }
                "augmented" => augment_partition(&g, greedy_domatic_partition(&g)).classes,
                _ => usage(),
            };
            let layout = domatic::viz::spring(&g, 80);
            let svg = domatic::viz::render_topology(
                &g,
                &layout,
                &classes,
                &domatic::viz::TopologyStyle::default(),
            );
            std::fs::write(out, svg).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(1);
            });
            println!("wrote {out} ({} classes)", classes.len());
        }
        "optimum" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let o = parse_opts(&rest[1..]);
            let g = load_graph(path);
            if g.n() > 24 {
                eprintln!(
                    "optimum enumerates minimal dominating sets; {} nodes is too many (max 24)",
                    g.n()
                );
                std::process::exit(1);
            }
            match lp_optimal_lifetime(&g, &vec![o.b as f64; g.n()], 5_000_000) {
                Ok(opt) => {
                    println!("exact L_OPT = {:.3}", opt.lifetime);
                    for (set, t) in &opt.schedule {
                        println!("  {set:?} × {t:.3}");
                    }
                }
                Err(e) => {
                    eprintln!("exact solve failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
