//! `domatic` — command-line front end: run the lifetime schedulers on an
//! edge-list topology file.
//!
//! ```text
//! domatic info <graph.txt>
//! domatic solve <graph.txt> [--b N] [--k K] [--hops D] [--alg <solver>] \
//!               [--solver <solver>] [--seed S] [--trials R] \
//!               [--budget-ms MS] [--max-iters N] [--verbose] \
//!               [--out schedule.txt]
//!               # `schedule` is an alias; `--solver` is an alias of `--alg`
//! domatic validate <graph.txt> <schedule.txt> [--b N] [--k K] [--hops D]
//! domatic partition <graph.txt> [--alg greedy|feige|augmented]
//! domatic simulate <graph.txt> [--b N] [--k K]
//! domatic adapt <graph.txt> [--b N] [--k K] [--alg <solver>] [--seed S] \
//!               [--failures none|crash|battery-noise|transient-loss|all] \
//!               [--p P] [--slots N] [--retries N] [--drift N] [--json]
//! domatic render <graph.txt> --out fig.svg [--alg greedy|feige|augmented]
//! domatic optimum <graph.txt> [--b N]      # exact LP, small graphs only
//! domatic serve [--graph NAME=SPEC ...] [--port P] [--capacity N] \
//!               [--shards N] [--shed-join-waiters N] \
//!               [--batch-window-ms N] [--cache-bytes N] \
//!               [--access-log PATH] [--metrics-port P] [--slow-ms N] \
//!               [--trace-ring N]
//! domatic bench-serve --addr HOST:PORT [--requests N] [--clients C] \
//!                     [--mode closed|open] [--rate RPS] \
//!                     [--graphs a,b] [--trace-file req.jsonl] [--json] \
//!                     [--matrix [--clients-list 100,1000,10000] \
//!                               [--out BENCH_serve.json]]
//! domatic scenario --addr HOST:PORT [--quick] [--seed S] \
//!                  [--out BENCH_scenarios.json]
//! domatic top --addr HOST:PORT [--interval-ms N] [--iterations N] [--no-clear]
//! domatic profile --addr HOST:PORT
//! ```
//!
//! `serve` runs the batching, caching JSON-lines solve service from
//! `domatic-server` over stdio (default) or TCP (`--port`; port 0 binds
//! an ephemeral port and prints it). A graph SPEC is either a path to an
//! edge-list file or a synthetic spec `ring:N` / `gnp:N,DEG,SEED` /
//! `dense:N,K`.
//! `bench-serve` replays a request trace (or a synthetic mixed workload
//! with deliberate duplicates) against a running server from a
//! single-threaded evented client that multiplexes every connection over
//! one epoll — `--clients 10000` is ten thousand real sockets, not ten
//! thousand threads. `--mode closed` (default) keeps one request in
//! flight per connection; `--mode open` departs requests on a fixed
//! inter-arrival schedule (`--rate`, requests/s across all connections)
//! and measures latency from the *scheduled* arrival, so queueing delay
//! under overload is charged to the server rather than silently omitted.
//! Reports p50/p99/p99.9 latency, a full latency histogram (`--json`,
//! same bucket layout as the metrics exposition), throughput, error
//! counts, and an order-independent digest of the response bytes for
//! determinism comparisons. `--matrix` sweeps a client-count list in
//! both modes and writes `BENCH_serve.json`.
//!
//! `scenario` replays four seeded churn campaigns — crash waves, link
//! flap, battery recharge, dense-linear growth — against a live server's
//! `mutate` op over one blocking connection, asserting zero errors,
//! lifetime ≥ 1 on every solve, and byte-identical re-solves when a
//! mutation chain returns a graph to earlier content. Each campaign's
//! receipt-order response digest lands in `BENCH_scenarios.json`; CI
//! compares digests across shard counts and against the committed copy
//! (timings stay advisory). The server must expose the campaign graphs:
//! `crash=gnp:32,5.0,7 flap=ring:24 recharge=ring:18 dense=dense:12,3`.
//!
//! Observability (see `docs/OBSERVABILITY.md`): `--access-log` writes
//! per-request lifecycle events as JSON lines, `--metrics-port` starts a
//! plain-text Prometheus scrape listener, `--slow-ms` dumps outlier
//! lifecycles, and the `metrics`/`profile` protocol ops expose the same
//! data in-band. `domatic top` polls a running server and renders a
//! refreshing req/s / in-flight / shed / hit-rate / per-op-latency
//! table; `domatic profile` converts the server's trace ring and span
//! aggregates into collapsed-stack (flamegraph) lines. Tracing never
//! changes response bytes.
//!
//! `<solver>` is any name from `domatic_core::solver::solver_registry()`
//! (`uniform`, `general`, `greedy`, `ft`, `tabu`, `sa`, `portfolio`); an
//! unknown name lists what is available. The graph format is
//! `domatic_graph::io`'s: a `n <count>` header then one `u v` edge per
//! line (`#` comments allowed).
//!
//! `--budget-ms MS` caps the anytime solvers' (tabu/sa/portfolio)
//! refinement wall-clock per peeling round; `--max-iters N` caps their
//! local-search moves deterministically (`SolverConfig::budget`). Both
//! are ignored by the one-shot paper solvers.
//!
//! `--hops D` relaxes coverage to d-hop domination: every node must have
//! `k` active nodes within `D` hops (solvers plan on the D-th graph
//! power; see `SolverConfig::hops`). `adapt` rejects `--hops > 1` — the
//! adaptive runtime's coverage census is strictly 1-hop.
//!
//! Every subcommand additionally accepts `--trace` (enables span timing
//! and prints the telemetry snapshot — counters plus the nested span tree
//! — after the subcommand finishes) and `--threads N` (sizes the global
//! thread pool; defaults to `RAYON_NUM_THREADS` or the available cores).

use domatic::core::solver::{make_solver, solver_registry, Solver, SolverConfig};
use domatic::lp::lp_optimal_lifetime;
use domatic::netsim::{
    compare_static_adaptive, AdaptiveConfig, FailureModel, FailurePlan, FollowSchedule,
};
use domatic::prelude::*;
use domatic::schedule::compact::render;
use domatic::schedule::metrics::schedule_metrics;
use domatic::schedule::validate_schedule_hops;

fn usage() -> ! {
    eprintln!(
        "usage:\n  domatic info <graph.txt>\n  domatic solve <graph.txt> [--b N] [--k K] [--hops D] [--alg SOLVER] [--solver SOLVER] [--seed S] [--trials R] [--budget-ms MS] [--max-iters N] [--verbose] [--gantt] [--out schedule.txt]   (alias: schedule)\n  domatic validate <graph.txt> <schedule.txt> [--b N] [--k K] [--hops D]\n  domatic partition <graph.txt> [--alg greedy|feige|augmented] [--seed S]\n  domatic simulate <graph.txt> [--b N] [--k K] [--seed S]\n  domatic adapt <graph.txt> [--b N] [--k K] [--alg SOLVER] [--seed S] [--trials R] [--failures none|crash|battery-noise|transient-loss|all] [--p P] [--slots N] [--retries N] [--drift N] [--json]\n  domatic render <graph.txt> --out fig.svg [--alg greedy|feige|augmented]\n  domatic optimum <graph.txt> [--b N]\n  domatic serve [--graph NAME=SPEC ...] [--port P] [--shards N] [--capacity N] [--batch-window-ms N] [--cache-bytes N] [--shed-join-waiters N] [--access-log PATH] [--metrics-port P] [--slow-ms N] [--trace-ring N]\n  domatic bench-serve --addr HOST:PORT [--requests N] [--clients C] [--mode closed|open] [--rate RPS] [--graphs a,b] [--trace-file req.jsonl] [--json] [--matrix [--clients-list 100,1000,10000] [--out BENCH_serve.json]]\n  domatic scenario --addr HOST:PORT [--quick] [--seed S] [--out BENCH_scenarios.json]   (needs graphs crash=gnp:32,5.0,7 flap=ring:24 recharge=ring:18 dense=dense:12,3)\n  domatic top --addr HOST:PORT [--interval-ms N] [--iterations N] [--no-clear]\n  domatic profile --addr HOST:PORT\nSOLVER is one of: {}\nany subcommand also takes --trace (print timing spans and counters on exit) and --threads N (thread-pool size; default RAYON_NUM_THREADS or all cores)",
        domatic::core::solver::solver_names().join("|")
    );
    std::process::exit(2)
}

fn load_graph(path: &str) -> Graph {
    domatic::core::io::load_graph(path).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

/// Resolves `--alg` through the solver registry; an unknown name exits
/// with the registry's own "known solvers" message.
fn resolve_solver(name: &str) -> Box<dyn Solver> {
    make_solver(name).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

struct Opts {
    b: u64,
    k: usize,
    hops: usize,
    alg: String,
    seed: u64,
    trials: u64,
    budget_ms: Option<u64>,
    max_iters: Option<u64>,
    verbose: bool,
    gantt: bool,
    out: Option<String>,
    failures: String,
    p: f64,
    slots: u64,
    retries: u32,
    drift: u64,
    json: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        b: 3,
        k: 1,
        hops: 1,
        alg: "uniform".into(),
        seed: 0,
        trials: 8,
        budget_ms: None,
        max_iters: None,
        verbose: false,
        gantt: false,
        out: None,
        failures: "crash".into(),
        p: 0.02,
        slots: 10_000,
        retries: 2,
        drift: 2,
        json: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--b" => o.b = next("--b").parse().unwrap_or_else(|_| usage()),
            "--k" => o.k = next("--k").parse().unwrap_or_else(|_| usage()),
            "--hops" => {
                o.hops = next("--hops").parse().unwrap_or_else(|_| usage());
                if o.hops == 0 {
                    eprintln!("--hops must be at least 1");
                    std::process::exit(2);
                }
            }
            "--alg" => o.alg = next("--alg"),
            // `--solver` is the preferred spelling; both resolve through
            // the same registry.
            "--solver" => o.alg = next("--solver"),
            "--seed" => o.seed = next("--seed").parse().unwrap_or_else(|_| usage()),
            "--trials" => o.trials = next("--trials").parse().unwrap_or_else(|_| usage()),
            "--budget-ms" => {
                o.budget_ms = Some(next("--budget-ms").parse().unwrap_or_else(|_| usage()))
            }
            "--max-iters" => {
                o.max_iters = Some(next("--max-iters").parse().unwrap_or_else(|_| usage()))
            }
            "--verbose" => o.verbose = true,
            "--gantt" => o.gantt = true,
            "--out" => o.out = Some(next("--out")),
            "--failures" => o.failures = next("--failures"),
            "--p" => o.p = next("--p").parse().unwrap_or_else(|_| usage()),
            "--slots" => o.slots = next("--slots").parse().unwrap_or_else(|_| usage()),
            "--retries" => o.retries = next("--retries").parse().unwrap_or_else(|_| usage()),
            "--drift" => o.drift = next("--drift").parse().unwrap_or_else(|_| usage()),
            "--json" => o.json = true,
            _ => usage(),
        }
    }
    o
}

fn solver_config(o: &Opts) -> SolverConfig {
    let mut budget = domatic::core::solver::Budget::new();
    if let Some(ms) = o.budget_ms {
        budget = budget.deadline_ms(ms);
    }
    if let Some(iters) = o.max_iters {
        budget = budget.max_iterations(iters);
    }
    SolverConfig::new()
        .seed(o.seed)
        .trials(o.trials)
        .k(o.k)
        .hops(o.hops)
        .budget(budget)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace = args.iter().any(|a| a == "--trace");
    if trace {
        args.retain(|a| a != "--trace");
        domatic_telemetry::set_enabled(true);
    }
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        let n: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--threads needs a positive integer");
                std::process::exit(2);
            });
        args.drain(i..=i + 1);
        if rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .is_err()
        {
            eprintln!("--threads: thread pool already initialized; flag ignored");
        }
    }
    domatic_telemetry::global().set_gauge("runtime.threads", rayon::current_num_threads() as u64);
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.clone(), r.to_vec()),
        None => usage(),
    };
    run_command(&cmd, &rest);
    if trace {
        use domatic_telemetry::Sink;
        let snapshot = domatic_telemetry::global().snapshot();
        let mut sink = domatic_telemetry::TableSink::new(std::io::stderr());
        sink.emit(&cmd, &snapshot).expect("write trace");
    }
}

fn run_command(cmd: &str, rest: &[String]) {
    let rest = rest.to_vec();
    match cmd {
        "info" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let g = load_graph(path);
            println!("{}", domatic::graph::properties::describe(&g));
            println!("connected: {}", domatic::graph::traversal::is_connected(&g));
            if let Some(delta) = g.min_degree() {
                println!("domatic number upper bound (δ+1): {}", delta + 1);
            }
            let dec = domatic::graph::kcore::core_decomposition(&g);
            println!(
                "degeneracy (max core): {} — scheduling headroom of the bulk vs δ's certificate",
                dec.degeneracy
            );
            if g.n() <= 150 {
                let kappa = domatic::graph::flow::vertex_connectivity(&g);
                println!(
                    "vertex connectivity κ: {kappa} — ceiling for CONNECTED domatic partitions"
                );
            }
        }
        "schedule" | "solve" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let o = parse_opts(&rest[1..]);
            let g = load_graph(path);
            let batteries = Batteries::uniform(g.n(), o.b);
            let solver = resolve_solver(&o.alg);
            let cfg = solver_config(&o);
            let schedule = solver.schedule(&g, &batteries, &cfg).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            let tolerance = solver.tolerance(&cfg);
            let bound = solver.upper_bound(&g, &batteries, &cfg);
            validate_schedule_hops(&g, &batteries, &schedule, tolerance, o.hops).unwrap_or_else(
                |v| {
                    eprintln!("internal error: emitted schedule invalid: {v}");
                    std::process::exit(1);
                },
            );
            println!(
                "{}: lifetime {} (upper bound {bound})",
                solver.describe(),
                schedule.lifetime()
            );
            let m = schedule_metrics(&schedule, &batteries);
            println!(
                "steps {} | mean awake {:.1} | utilization {:.0}% | fairness {:.2}",
                m.steps,
                m.mean_active,
                100.0 * m.utilization,
                m.fairness
            );
            if o.verbose {
                println!("{}", render(&schedule));
            }
            if o.gantt {
                print!(
                    "{}",
                    domatic::schedule::compact::render_gantt(&schedule, g.n())
                );
            }
            if let Some(path) = &o.out {
                let text = domatic::schedule::io::to_text(&schedule, g.n());
                std::fs::write(path, text).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                });
                println!("wrote {path}");
            }
        }
        "validate" => {
            let (gpath, spath) = match (rest.first(), rest.get(1)) {
                (Some(a), Some(b)) => (a.clone(), b.clone()),
                _ => usage(),
            };
            let o = parse_opts(&rest[2..]);
            let g = load_graph(&gpath);
            let (schedule, universe) =
                domatic::core::io::load_schedule(&spath).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                });
            if universe != g.n() {
                eprintln!("schedule universe {universe} != graph size {}", g.n());
                std::process::exit(1);
            }
            let batteries = Batteries::uniform(g.n(), o.b);
            match validate_schedule_hops(&g, &batteries, &schedule, o.k, o.hops) {
                Ok(()) => println!(
                    "VALID: lifetime {} at tolerance k = {} within b = {} (hops = {})",
                    schedule.lifetime(),
                    o.k,
                    o.b,
                    o.hops
                ),
                Err(v) => {
                    println!("INVALID: {v}");
                    std::process::exit(3);
                }
            }
        }
        "partition" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let o = parse_opts(&rest[1..]);
            let g = load_graph(path);
            use domatic::core::augment::augment_partition;
            use domatic::core::feige::{feige_partition, FeigeParams};
            use domatic::core::greedy::greedy_domatic_partition;
            let classes = match o.alg.as_str() {
                // "uniform" is parse_opts' default; map it to greedy here.
                "greedy" | "uniform" => greedy_domatic_partition(&g),
                "feige" => {
                    feige_partition(
                        &g,
                        &FeigeParams {
                            c: 3.0,
                            max_sweeps: 60,
                            seed: o.seed,
                        },
                    )
                    .classes
                }
                "augmented" => augment_partition(&g, greedy_domatic_partition(&g)).classes,
                _ => usage(),
            };
            println!(
                "{} disjoint dominating sets (δ+1 ceiling: {})",
                classes.len(),
                g.min_degree().map_or(0, |d| d + 1)
            );
            for (i, c) in classes.iter().enumerate() {
                if o.verbose {
                    println!("  class {i}: {:?}", c.to_vec());
                } else if i < 5 {
                    println!("  class {i}: {} nodes", c.len());
                }
            }
            if !o.verbose && classes.len() > 5 {
                println!("  … ({} more; --verbose for members)", classes.len() - 5);
            }
        }
        "simulate" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let o = parse_opts(&rest[1..]);
            let g = load_graph(path);
            use domatic::core::greedy::greedy_domatic_partition;
            use domatic::netsim::{
                simulate, AllActive, DomaticRotation, EnergyModel, SimConfig, SingleMds, Strategy,
            };
            let cfg = SimConfig {
                model: EnergyModel::standard(),
                k: o.k,
                max_slots: 1_000_000,
                switch_cost: 0.0,
            };
            let energies = vec![o.b as f64; g.n()];
            let batteries = Batteries::uniform(g.n(), o.b);
            let scfg = solver_config(&o);
            let classes = greedy_domatic_partition(&g);
            let mut strategies: Vec<Box<dyn Strategy>> = vec![
                Box::new(AllActive),
                Box::new(SingleMds::static_once()),
                Box::new(DomaticRotation::new(classes, 1)),
            ];
            // One schedule-playback row per registered solver.
            let mut labels: Vec<String> = strategies.iter().map(|s| s.name().to_string()).collect();
            for solver in solver_registry() {
                match solver.schedule(&g, &batteries, &scfg) {
                    Ok(s) => {
                        labels.push(format!("schedule[{}]", solver.name()));
                        strategies.push(Box::new(FollowSchedule::new(s)));
                    }
                    Err(e) => eprintln!("skipping {}: {e}", solver.name()),
                }
            }
            println!(
                "{:<22} {:>10} {:>12} {:>12}",
                "strategy", "lifetime", "delivered", "mean awake"
            );
            for (label, s) in labels.iter().zip(strategies.iter_mut()) {
                let res = simulate(&g, &energies, s.as_mut(), &cfg, None);
                println!(
                    "{:<22} {:>10} {:>12} {:>12.1}",
                    label, res.lifetime, res.delivered, res.mean_active
                );
            }
        }
        "adapt" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let o = parse_opts(&rest[1..]);
            if o.hops > 1 {
                // Same policy (and same typed error) as the serve layer:
                // the adaptive runtime's coverage census is strictly
                // 1-hop, so planning d-hop schedules under it would
                // misjudge coverage.
                eprintln!(
                    "{}",
                    domatic::core::DomaticError::Config {
                        message: "adapt does not support --hops > 1".into(),
                    }
                );
                std::process::exit(2);
            }
            let g = load_graph(path);
            let batteries = Batteries::uniform(g.n(), o.b);
            let solver = resolve_solver(&o.alg);
            let scfg = solver_config(&o);
            let Some(models) = FailureModel::parse(&o.failures, o.p) else {
                eprintln!(
                    "unknown failure model '{}'; use none|crash|battery-noise|transient-loss|all",
                    o.failures
                );
                std::process::exit(2);
            };
            let plan = FailurePlan::draw(&models, g.n(), o.slots, o.seed);
            let acfg = AdaptiveConfig {
                k: o.k,
                drift_tolerance: o.drift,
                max_retries: o.retries,
                max_slots: o.slots,
                max_replans: 64,
                record_curve: true,
            };
            let cmp = compare_static_adaptive(&g, &batteries, solver.as_ref(), &scfg, &acfg, &plan)
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                });
            let (crashes, drains, losses) = plan.event_counts();
            if o.json {
                // Hand-rendered with a fixed field order so two same-seed
                // runs emit byte-identical output.
                let curve: Vec<String> = cmp
                    .adaptive
                    .coverage_curve
                    .iter()
                    .map(|p| {
                        format!(
                            "{{\"slot\":{},\"covered\":{},\"alive\":{}}}",
                            p.slot, p.covered, p.alive
                        )
                    })
                    .collect();
                println!(
                    "{{\"n\":{},\"alg\":\"{}\",\"failures\":\"{}\",\"p\":{:?},\"seed\":{},\"b\":{},\"k\":{},\"planned\":{},\"crashes\":{crashes},\"drains\":{drains},\"losses\":{losses},\"static_lifetime\":{},\"static_end\":\"{}\",\"adaptive_lifetime\":{},\"adaptive_end\":\"{}\",\"delta\":{},\"replans\":{},\"retries\":{},\"deaths\":{},\"coverage_curve\":[{}]}}",
                    g.n(),
                    solver.name(),
                    o.failures,
                    o.p,
                    o.seed,
                    o.b,
                    o.k,
                    cmp.planned,
                    cmp.static_run.lifetime,
                    cmp.static_run.end.label(),
                    cmp.adaptive.lifetime,
                    cmp.adaptive.end.label(),
                    cmp.delta(),
                    cmp.adaptive.replans,
                    cmp.adaptive.retries,
                    cmp.adaptive.deaths,
                    curve.join(",")
                );
            } else {
                println!(
                    "{} | failures {} (p = {}) | {} crashes, {} double drains, {} losses drawn",
                    solver.describe(),
                    o.failures,
                    o.p,
                    crashes,
                    drains,
                    losses
                );
                println!(
                    "planned lifetime {} | static survives {} ({}) | adaptive survives {} ({})",
                    cmp.planned,
                    cmp.static_run.lifetime,
                    cmp.static_run.end.label(),
                    cmp.adaptive.lifetime,
                    cmp.adaptive.end.label()
                );
                println!(
                    "delta +{} slots | {} replans | {} retries | {} deaths",
                    cmp.delta().max(0),
                    cmp.adaptive.replans,
                    cmp.adaptive.retries,
                    cmp.adaptive.deaths
                );
                if o.verbose {
                    for p in &cmp.adaptive.coverage_curve {
                        println!("  slot {:>6}: {}/{} covered", p.slot, p.covered, p.alive);
                    }
                }
            }
        }
        "render" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let o = parse_opts(&rest[1..]);
            let Some(out) = &o.out else {
                eprintln!("render needs --out <file.svg>");
                std::process::exit(2);
            };
            let g = load_graph(path);
            use domatic::core::augment::augment_partition;
            use domatic::core::feige::{feige_partition, FeigeParams};
            use domatic::core::greedy::greedy_domatic_partition;
            let classes = match o.alg.as_str() {
                "greedy" | "uniform" => greedy_domatic_partition(&g),
                "feige" => {
                    feige_partition(
                        &g,
                        &FeigeParams {
                            c: 3.0,
                            max_sweeps: 60,
                            seed: o.seed,
                        },
                    )
                    .classes
                }
                "augmented" => augment_partition(&g, greedy_domatic_partition(&g)).classes,
                _ => usage(),
            };
            let layout = domatic::viz::spring(&g, 80);
            let svg = domatic::viz::render_topology(
                &g,
                &layout,
                &classes,
                &domatic::viz::TopologyStyle::default(),
            );
            std::fs::write(out, svg).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(1);
            });
            println!("wrote {out} ({} classes)", classes.len());
        }
        "optimum" => {
            let path = rest.first().unwrap_or_else(|| usage());
            let o = parse_opts(&rest[1..]);
            let g = load_graph(path);
            if g.n() > 24 {
                eprintln!(
                    "optimum enumerates minimal dominating sets; {} nodes is too many (max 24)",
                    g.n()
                );
                std::process::exit(1);
            }
            match lp_optimal_lifetime(&g, &vec![o.b as f64; g.n()], 5_000_000) {
                Ok(opt) => {
                    println!("exact L_OPT = {:.3}", opt.lifetime);
                    for (set, t) in &opt.schedule {
                        println!("  {set:?} × {t:.3}");
                    }
                }
                Err(e) => {
                    eprintln!("exact solve failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "serve" => cmd_serve(&rest),
        "bench-serve" => cmd_bench_serve(&rest),
        "scenario" => cmd_scenario(&rest),
        "top" => cmd_top(&rest),
        "profile" => cmd_profile(&rest),
        _ => usage(),
    }
}

/// Resolves a `serve --graph` SPEC: a path to an edge-list file, or a
/// synthetic spec `ring:N` (cycle with skip-3 chords, the CI smoke
/// topology) / `gnp:N,DEG,SEED` (Erdős–Rényi at target average degree) /
/// `dense:N,K` (banded dense-linear: node `i` adjacent to its `K`
/// predecessors, the adversarial topology from the scenario campaign —
/// every window of `K+1` consecutive nodes is a clique, so domination
/// is easy but disjoint classes are scarce).
fn graph_from_spec(spec: &str) -> Graph {
    if let Some(n) = spec.strip_prefix("ring:") {
        let n: u32 = n.parse().unwrap_or_else(|_| {
            eprintln!("ring:N needs an integer node count, got '{spec}'");
            std::process::exit(2);
        });
        let edges: Vec<(u32, u32)> = (0..n)
            .flat_map(|i| [(i, (i + 1) % n), (i, (i + 3) % n)])
            .collect();
        return Graph::from_edges(n as usize, &edges);
    }
    if let Some(params) = spec.strip_prefix("gnp:") {
        let parts: Vec<&str> = params.split(',').collect();
        let parsed = (|| {
            let [n, d, seed] = parts.as_slice() else {
                return None;
            };
            Some((
                n.parse::<usize>().ok()?,
                d.parse::<f64>().ok()?,
                seed.parse::<u64>().ok()?,
            ))
        })();
        let Some((n, d, seed)) = parsed else {
            eprintln!("gnp:N,DEG,SEED is malformed in '{spec}'");
            std::process::exit(2);
        };
        return domatic::graph::generators::gnp::gnp_with_avg_degree(n, d, seed);
    }
    if let Some(params) = spec.strip_prefix("dense:") {
        let parsed = params
            .split_once(',')
            .and_then(|(n, k)| Some((n.parse::<u32>().ok()?, k.parse::<u32>().ok()?)));
        let Some((n, k)) = parsed.filter(|&(n, k)| n >= 2 && k >= 1) else {
            eprintln!("dense:N,K needs N >= 2 nodes and band K >= 1, got '{spec}'");
            std::process::exit(2);
        };
        let edges: Vec<(u32, u32)> = (1..n)
            .flat_map(|i| (1..=k.min(i)).map(move |j| (i, i - j)))
            .collect();
        return Graph::from_edges(n as usize, &edges);
    }
    load_graph(spec)
}

fn cmd_serve(rest: &[String]) {
    use domatic::server::{Server, ServerConfig};
    let mut cfg = ServerConfig::default();
    let mut graphs: Vec<(String, String)> = Vec::new();
    let mut port: Option<u16> = None;
    let mut access_log: Option<String> = None;
    let mut metrics_port: Option<u16> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--graph" => {
                let v = next("--graph");
                let Some((name, spec)) = v.split_once('=') else {
                    eprintln!("--graph takes NAME=SPEC, got '{v}'");
                    std::process::exit(2);
                };
                graphs.push((name.to_string(), spec.to_string()));
            }
            "--port" => port = Some(next("--port").parse().unwrap_or_else(|_| usage())),
            "--stdio" => port = None,
            "--capacity" => cfg.capacity = next("--capacity").parse().unwrap_or_else(|_| usage()),
            "--batch-window-ms" => {
                cfg.batch_window = std::time::Duration::from_millis(
                    next("--batch-window-ms")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--cache-bytes" => {
                cfg.cache_bytes = next("--cache-bytes").parse().unwrap_or_else(|_| usage())
            }
            "--access-log" => access_log = Some(next("--access-log")),
            "--metrics-port" => {
                metrics_port = Some(next("--metrics-port").parse().unwrap_or_else(|_| usage()))
            }
            "--slow-ms" => {
                cfg.slow_ms = Some(next("--slow-ms").parse().unwrap_or_else(|_| usage()))
            }
            "--trace-ring" => {
                cfg.trace_ring = next("--trace-ring").parse().unwrap_or_else(|_| usage())
            }
            "--shards" => {
                cfg.shards = next("--shards")
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--shed-join-waiters" => {
                cfg.shed_join_waiters = next("--shed-join-waiters")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
    }
    // A 1024-fd inherited soft limit caps a 10k-connection server far
    // below its design point; raise it up front (best effort).
    let _ = mio::sys::raise_nofile_limit(65_536);
    if graphs.is_empty() {
        graphs.push(("main".into(), "ring:24".into()));
    }
    let shards = cfg.shards;
    let server = Server::new(cfg);
    for (name, spec) in &graphs {
        server.add_graph(name.clone(), graph_from_spec(spec));
    }
    let server = std::sync::Arc::new(server);
    if let Some(path) = &access_log {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot open access log {path}: {e}");
            std::process::exit(1);
        });
        server.set_access_log(Box::new(std::io::BufWriter::new(file)));
        eprintln!("access log: {path}");
    }
    if let Some(mp) = metrics_port {
        let listener = std::net::TcpListener::bind(("127.0.0.1", mp)).unwrap_or_else(|e| {
            eprintln!("cannot bind metrics port 127.0.0.1:{mp}: {e}");
            std::process::exit(1);
        });
        let addr = listener.local_addr().expect("bound socket has an address");
        // The obs-smoke harness greps for this exact line to learn the
        // scrape address.
        println!("metrics on {addr}");
        let srv = std::sync::Arc::clone(&server);
        std::thread::spawn(move || serve_metrics(&srv, listener));
    }
    eprintln!("graphs: {}", server.graph_names().join(", "));
    match port {
        None => {
            eprintln!("serving JSON-lines on stdio (EOF or op=shutdown drains)");
            server.serve_stdio();
        }
        Some(port) => {
            let listener = std::net::TcpListener::bind(("127.0.0.1", port)).unwrap_or_else(|e| {
                eprintln!("cannot bind 127.0.0.1:{port}: {e}");
                std::process::exit(1);
            });
            let addr = listener.local_addr().expect("bound socket has an address");
            // The smoke harness greps for this exact line to learn the port.
            println!("listening on {addr}");
            eprintln!("transport: evented, {shards} shard(s)");
            if let Err(e) = server.serve_tcp(listener) {
                eprintln!("serve: {e}");
                std::process::exit(1);
            }
        }
    }
    let s = server.stats();
    eprintln!(
        "drained: {} requests, {} solves, {} cache hits, {} batch joins, {} errors",
        s.requests, s.solves, s.cache_hits, s.batch_joined, s.errors
    );
}

/// The `--metrics-port` scrape loop: a minimal plain-text HTTP/1.0
/// responder. Every connection gets one fresh registry snapshot in
/// Prometheus text exposition format and is closed — exactly what a
/// scraper (or `curl`) expects, with no HTTP machinery beyond it.
fn serve_metrics(server: &domatic::server::Server, listener: std::net::TcpListener) {
    use std::io::{BufRead, BufReader, Write};
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        });
        // Drain the request head (request line + headers) up to the
        // blank line; the path is irrelevant — every scrape gets the
        // full exposition.
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) if line == "\r\n" || line == "\n" => break,
                Ok(_) => continue,
                Err(_) => break,
            }
        }
        let body = server.metrics_text();
        let mut stream = stream;
        let _ = write!(
            stream,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let _ = stream.flush();
    }
}

/// One `metrics`-op round trip over an established JSON-lines
/// connection: sends the request, reads one response line, and returns
/// the parsed exposition as a [`Snapshot`].
fn scrape_snapshot(
    stream: &mut std::net::TcpStream,
    reader: &mut std::io::BufReader<std::net::TcpStream>,
    id: u64,
) -> Result<domatic_telemetry::Snapshot, String> {
    use std::io::{BufRead, Write};
    writeln!(stream, "{{\"id\":{id},\"op\":\"metrics\"}}").map_err(|e| e.to_string())?;
    let mut line = String::new();
    if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
        return Err("server closed the connection".into());
    }
    let v =
        domatic_telemetry::json::parse(line.trim()).map_err(|e| format!("bad response: {e}"))?;
    let text = v
        .get("result")
        .and_then(|r| r.get("exposition"))
        .and_then(|t| t.as_str())
        .ok_or_else(|| format!("response has no exposition: {}", line.trim()))?;
    domatic_telemetry::prometheus::parse_snapshot(text)
}

/// `domatic top`: polls a running server's `metrics` op and renders a
/// refreshing live table — request rate, in-flight, shed, cache
/// hit-rate, and per-op latency quantiles, all computed from
/// [`Snapshot::delta`] windows so they are rates, not lifetime totals.
fn cmd_top(rest: &[String]) {
    let mut addr = String::new();
    let mut interval_ms = 1000u64;
    let mut iterations = 0u64; // 0 = run until interrupted
    let mut clear = true;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--addr" => addr = next("--addr"),
            "--interval-ms" => {
                interval_ms = next("--interval-ms").parse().unwrap_or_else(|_| usage())
            }
            "--iterations" => iterations = next("--iterations").parse().unwrap_or_else(|_| usage()),
            "--no-clear" => clear = false,
            _ => usage(),
        }
    }
    if addr.is_empty() {
        eprintln!("top needs --addr HOST:PORT");
        std::process::exit(2);
    }
    let stream = std::net::TcpStream::connect(&addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
    let mut stream = stream;
    let mut prev: Option<domatic_telemetry::Snapshot> = None;
    let mut tick = 0u64;
    loop {
        tick += 1;
        let snap = match scrape_snapshot(&mut stream, &mut reader, tick) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("top: {e}");
                std::process::exit(1);
            }
        };
        if let Some(prev_snap) = &prev {
            let d = snap.delta(prev_snap);
            let secs = interval_ms as f64 / 1e3;
            let counter = |name: &str| *d.counters.get(name).unwrap_or(&0);
            let hits = counter("server_cache_hit") as f64;
            let misses = counter("server_cache_miss") as f64;
            let hit_rate = if hits + misses > 0.0 {
                100.0 * hits / (hits + misses)
            } else {
                0.0
            };
            if clear {
                // ANSI clear-screen + home, the classic `top` refresh.
                print!("\x1b[2J\x1b[H");
            }
            println!(
                "domatic top — {addr} — window {interval_ms} ms (tick {})",
                tick - 1
            );
            println!(
                "req/s {:>8.1} | in-flight {:>4} | shed/s {:>6.1} | errors/s {:>6.1} | cache hit {hit_rate:>5.1}%",
                counter("server_requests") as f64 / secs,
                snap.gauges.get("server_inflight").unwrap_or(&0),
                counter("server_overload") as f64 / secs,
                counter("server_errors") as f64 / secs,
            );
            println!(
                "{:<10} {:>8} {:>10} {:>10} {:>10}",
                "op", "count", "p50_us", "p99_us", "max<=us"
            );
            if let Some(fam) = d.labeled.get("server_request_latency_us") {
                for (cell, summary) in fam {
                    if summary.count == 0 {
                        continue;
                    }
                    // Cell keys look like `op="solve"`.
                    let op = cell
                        .strip_prefix("op=\"")
                        .and_then(|s| s.strip_suffix('"'))
                        .unwrap_or(cell);
                    let top_bucket = summary
                        .bounds
                        .iter()
                        .zip(&summary.counts)
                        .filter(|(_, c)| **c > 0)
                        .map(|(b, _)| *b)
                        .next_back()
                        .unwrap_or(0);
                    println!(
                        "{op:<10} {:>8} {:>10} {:>10} {:>10}",
                        summary.count,
                        summary.quantile(0.50),
                        summary.quantile(0.99),
                        top_bucket,
                    );
                }
            }
        } else {
            println!("domatic top — {addr} — collecting first window…");
        }
        prev = Some(snap);
        if iterations > 0 && tick > iterations {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// `domatic profile`: fetches a running server's `profile` op and
/// prints collapsed-stack (flamegraph) lines — span aggregates as
/// `path;segments value_ns`, and the trace ring aggregated per
/// (op, graph, alg) into queue/solve/render phase frames.
fn cmd_profile(rest: &[String]) {
    use std::io::{BufRead, Write};
    let mut addr = String::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                addr = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--addr needs a value");
                    std::process::exit(2);
                })
            }
            _ => usage(),
        }
    }
    if addr.is_empty() {
        eprintln!("profile needs --addr HOST:PORT");
        std::process::exit(2);
    }
    let stream = std::net::TcpStream::connect(&addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
    let mut stream = stream;
    writeln!(stream, "{{\"id\":1,\"op\":\"profile\"}}").expect("write request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    let v = domatic_telemetry::json::parse(line.trim()).unwrap_or_else(|e| {
        eprintln!("profile: bad response: {e}");
        std::process::exit(1);
    });
    let result = v.get("result").cloned().unwrap_or_else(|| {
        eprintln!("profile: error response: {}", line.trim());
        std::process::exit(1);
    });

    // Span aggregates: `a/b/c` paths become `a;b;c total_ns` frames.
    let mut span_lines = 0usize;
    if let Some(domatic_telemetry::json::Json::Obj(spans)) = result.get("spans") {
        for (path, stat) in spans {
            let Some(total_ns) = stat.get("total_ns").and_then(|t| t.as_int()) else {
                continue;
            };
            println!("{} {total_ns}", path.replace('/', ";"));
            span_lines += 1;
        }
    }

    // Trace ring: aggregate phase time per (op, graph, alg) identity so
    // repeated requests collapse into hot frames. Values are ns to
    // match the span lines (records carry µs).
    let mut phases: std::collections::BTreeMap<String, i128> = std::collections::BTreeMap::new();
    let mut ring_records = 0usize;
    if let Some(domatic_telemetry::json::Json::Arr(ring)) = result.get("ring") {
        ring_records = ring.len();
        for rec in ring {
            let field = |k: &str| {
                rec.get(k)
                    .and_then(|v| v.as_str())
                    .unwrap_or("?")
                    .to_string()
            };
            let us = |k: &str| rec.get(k).and_then(|v| v.as_int()).unwrap_or(0);
            let stack = format!("serve;{};{};{}", field("op"), field("graph"), field("alg"));
            for (phase, dur_us) in [
                ("queue_wait", us("queue_us")),
                ("solve", us("solve_us")),
                ("render", us("render_us")),
            ] {
                *phases.entry(format!("{stack};{phase}")).or_default() += dur_us * 1000;
            }
        }
    }
    for (stack, ns) in &phases {
        if *ns > 0 {
            println!("{stack} {ns}");
        }
    }
    eprintln!(
        "profile: {ring_records} ring records, {span_lines} span paths (collapsed-stack on stdout; pipe to flamegraph.pl)"
    );
}

/// The synthetic bench-serve workload: a mixed solve/bounds trace with
/// deliberate key duplicates (seeds cycle mod 3) so batching and caching
/// have something to coalesce. Deterministic in (`n`, `graphs`, `seed`).
fn synthetic_trace(n: usize, graphs: &[String], seed: u64) -> Vec<String> {
    (0..n)
        .map(|i| {
            let graph = &graphs[i % graphs.len()];
            let id = i + 1;
            if i % 4 == 0 {
                format!("{{\"id\":{id},\"op\":\"bounds\",\"graph\":\"{graph}\",\"b\":3}}")
            } else {
                let alg = if i % 2 == 0 { "greedy" } else { "uniform" };
                format!(
                    "{{\"id\":{id},\"op\":\"solve\",\"graph\":\"{graph}\",\"alg\":\"{alg}\",\"b\":3,\"seed\":{}}}",
                    seed + (i % 3) as u64
                )
            }
        })
        .collect()
}

fn bench_die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

/// One bench connection in the evented client.
struct BenchConn {
    stream: std::net::TcpStream,
    /// Trace indices assigned to this connection, in send order.
    lines: Vec<usize>,
    /// Next entry of `lines` to send (closed loop only).
    next: usize,
    out: Vec<u8>,
    out_pos: usize,
    inbuf: Vec<u8>,
    /// Send (closed loop) or scheduled-arrival (open loop) instants of
    /// requests whose responses are still outstanding, FIFO. Matching
    /// responses to requests by position is sound because the server
    /// answers each connection in receipt order.
    pending: std::collections::VecDeque<std::time::Instant>,
    want_write: bool,
}

impl BenchConn {
    fn queue(&mut self, line: &str, t0: std::time::Instant) {
        self.out.extend_from_slice(line.as_bytes());
        self.out.push(b'\n');
        self.pending.push_back(t0);
    }

    /// Writes until the socket blocks or the backlog drains, keeping
    /// writable interest registered exactly while backlog remains.
    fn flush(&mut self, poll: &mio::Poll, token: usize) {
        use std::io::Write;
        loop {
            if self.out_pos >= self.out.len() {
                self.out.clear();
                self.out_pos = 0;
                break;
            }
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => bench_die("server closed the connection mid-trace"),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => bench_die(&format!("write to server failed: {e}")),
            }
        }
        let backlog = self.out_pos < self.out.len();
        if backlog != self.want_write {
            let interest = if backlog {
                mio::Interest::READABLE | mio::Interest::WRITABLE
            } else {
                mio::Interest::READABLE
            };
            let _ = poll.reregister(&self.stream, mio::Token(token), interest);
            self.want_write = backlog;
        }
    }
}

/// One measured bench run.
struct BenchRun {
    clients: usize,
    mode: &'static str,
    /// Arrival rate in requests/s (0 for closed loop).
    rate: f64,
    requests: usize,
    errors: u64,
    wall_ms: u128,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    throughput_rps: f64,
    digest: u64,
    /// Sorted, for the `--json` histogram.
    latencies_us: Vec<u64>,
}

/// Drives one bench run: `clients` real sockets multiplexed over one
/// epoll on a single thread. Closed loop sends each connection's next
/// request when its previous response lands (latency from send). Open
/// loop departs request `k` at `start + k/rate` on connection
/// `k % clients` regardless of response progress, and measures latency
/// from that *scheduled* instant — so queueing delay under overload is
/// charged to the server instead of being coordinated away.
fn run_evented_bench(
    addr: &str,
    trace: &[String],
    clients: usize,
    mode: &'static str,
    rate: f64,
) -> BenchRun {
    use std::io::Read;
    use std::time::{Duration, Instant};

    let total = trace.len();
    let clients = clients.clamp(1, total.max(1));
    let open = mode == "open";

    let poll = mio::Poll::new().expect("epoll");
    let mut conns: Vec<BenchConn> = Vec::with_capacity(clients);
    for c in 0..clients {
        // Retry connects: a 10k-connection storm can overflow the
        // listener's accept backlog; back off instead of failing.
        let mut stream = None;
        for attempt in 0..200 {
            match std::net::TcpStream::connect(addr) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) if attempt == 199 => bench_die(&format!("cannot connect to {addr}: {e}")),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        let stream = stream.expect("connected");
        stream
            .set_nonblocking(true)
            .expect("nonblocking client socket");
        let _ = stream.set_nodelay(true);
        poll.register(&stream, mio::Token(c), mio::Interest::READABLE)
            .expect("register client socket");
        conns.push(BenchConn {
            stream,
            lines: Vec::new(),
            next: 0,
            out: Vec::new(),
            out_pos: 0,
            inbuf: Vec::new(),
            pending: std::collections::VecDeque::new(),
            want_write: false,
        });
        if c % 64 == 63 {
            // Pace the connect storm so the accept loop keeps up.
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    for k in 0..total {
        conns[k % clients].lines.push(k);
    }

    let mut latencies_us: Vec<u64> = Vec::with_capacity(total);
    let mut responses: Vec<String> = Vec::with_capacity(total);
    let mut errors = 0u64;
    let mut received = 0usize;
    let mut scratch = vec![0u8; 64 * 1024];
    let mut events = mio::Events::with_capacity(1024);
    let mut next_arrival = 0usize;
    let mut touched: Vec<usize> = Vec::new();

    let started = Instant::now();
    let deadline = started + Duration::from_secs(180);
    if !open {
        for (c, conn) in conns.iter_mut().enumerate() {
            if let Some(&k) = conn.lines.first() {
                conn.next = 1;
                conn.queue(&trace[k], Instant::now());
                conn.flush(&poll, c);
            }
        }
    }

    while received < total {
        let now = Instant::now();
        if now >= deadline {
            bench_die(&format!(
                "bench timed out: {received}/{total} responses after {:?}",
                started.elapsed()
            ));
        }
        let timeout = if open && next_arrival < total {
            let sched = started + Duration::from_secs_f64(next_arrival as f64 / rate);
            sched
                .saturating_duration_since(now)
                .clamp(Duration::from_millis(1), Duration::from_millis(100))
        } else {
            Duration::from_millis(100)
        };
        poll.poll(&mut events, Some(timeout)).expect("poll");

        for ev in events.iter() {
            let c = ev.token().0;
            if c >= conns.len() {
                continue;
            }
            if ev.is_readable() || ev.is_read_closed() {
                let mut eof = false;
                loop {
                    match conns[c].stream.read(&mut scratch) {
                        Ok(0) => {
                            eof = true;
                            break;
                        }
                        Ok(n) => conns[c].inbuf.extend_from_slice(&scratch[..n]),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => bench_die(&format!("read from server failed: {e}")),
                    }
                }
                // Frame complete response lines; FIFO-match to sends.
                let conn = &mut conns[c];
                let mut start = 0usize;
                let mut queued = false;
                while let Some(pos) = conn.inbuf[start..].iter().position(|&b| b == b'\n') {
                    let end = start + pos;
                    let line = String::from_utf8_lossy(&conn.inbuf[start..end])
                        .trim()
                        .to_string();
                    start = end + 1;
                    if line.is_empty() {
                        continue;
                    }
                    if let Some(t0) = conn.pending.pop_front() {
                        latencies_us.push(t0.elapsed().as_micros() as u64);
                    }
                    if line.contains("\"ok\":false") {
                        errors += 1;
                    }
                    responses.push(line);
                    received += 1;
                    if !open && conn.next < conn.lines.len() {
                        let k = conn.lines[conn.next];
                        conn.next += 1;
                        conn.queue(&trace[k], Instant::now());
                        queued = true;
                    }
                }
                conn.inbuf.drain(..start);
                if queued {
                    conn.flush(&poll, c);
                }
                if eof && !conn.pending.is_empty() {
                    bench_die("server closed the connection mid-trace");
                }
            }
            if ev.is_writable() {
                conns[c].flush(&poll, c);
            }
        }

        if open {
            // Depart every request whose scheduled arrival has passed.
            // The schedule itself never slips: a request that departs
            // late (because the loop was busy) keeps its scheduled
            // instant as its latency origin.
            touched.clear();
            let now = Instant::now();
            while next_arrival < total {
                let sched = started + Duration::from_secs_f64(next_arrival as f64 / rate);
                if sched > now {
                    break;
                }
                let c = next_arrival % clients;
                conns[c].queue(&trace[next_arrival], sched);
                touched.push(c);
                next_arrival += 1;
            }
            touched.sort_unstable();
            touched.dedup();
            for &c in &touched {
                conns[c].flush(&poll, c);
            }
        }
    }
    let wall = started.elapsed();

    latencies_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies_us.is_empty() {
            return 0;
        }
        let idx = ((latencies_us.len() as f64 - 1.0) * p).round() as usize;
        latencies_us[idx]
    };
    let (p50, p99, p999) = (pct(0.50), pct(0.99), pct(0.999));
    let throughput = responses.len() as f64 / wall.as_secs_f64().max(1e-9);

    // Order-independent digest of the response bytes: sort the lines,
    // then canonical-hash them. Equal digests across shard counts,
    // client counts, arrival modes, or cache states prove byte-identical
    // serving.
    responses.sort_unstable();
    let mut hasher = domatic::core::hash::CanonicalHasher::new();
    for r in &responses {
        hasher.write_str(r);
    }
    BenchRun {
        clients,
        mode,
        rate: if open { rate } else { 0.0 },
        requests: responses.len(),
        errors,
        wall_ms: wall.as_millis(),
        p50_us: p50,
        p99_us: p99,
        p999_us: p999,
        throughput_rps: throughput,
        digest: hasher.finish(),
        latencies_us,
    }
}

fn print_bench_run(run: &BenchRun, json: bool) {
    if json {
        // Full latency histogram in the same bucket layout as the
        // metrics exposition, so bench artifacts and live scrapes are
        // directly comparable.
        let hist = domatic_telemetry::BucketHistogram::new(
            &domatic_telemetry::default_latency_buckets_us(),
        );
        for &us in &run.latencies_us {
            hist.record(us);
        }
        let s = hist.summarize();
        let join = |v: &[u64]| {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        println!(
            "{{\"clients\":{},\"digest\":\"{:016x}\",\"errors\":{},\"latency\":{{\"bounds_us\":[{}],\"counts\":[{}],\"count\":{},\"sum_us\":{}}},\"mode\":\"{}\",\"p50_us\":{},\"p999_us\":{},\"p99_us\":{},\"rate\":{},\"requests\":{},\"throughput_rps\":{:.1},\"wall_ms\":{}}}",
            run.clients,
            run.digest,
            run.errors,
            join(&s.bounds),
            join(&s.counts),
            s.count,
            s.sum,
            run.mode,
            run.p50_us,
            run.p999_us,
            run.p99_us,
            run.rate,
            run.requests,
            run.throughput_rps,
            run.wall_ms
        );
    } else {
        let pace = if run.mode == "open" {
            format!("open loop @ {:.0} req/s", run.rate)
        } else {
            "closed loop".to_string()
        };
        println!(
            "{} requests over {} connections ({pace}) in {} ms",
            run.requests, run.clients, run.wall_ms
        );
        println!(
            "latency p50 {} us, p99 {} us, p99.9 {} us | throughput {:.1} req/s | {} errors",
            run.p50_us, run.p99_us, run.p999_us, run.throughput_rps, run.errors
        );
        println!("response digest {:016x}", run.digest);
    }
}

/// The connection-scaling matrix behind `bench-serve --matrix`: for each
/// client count, one closed-loop and one open-loop run over the same
/// synthetic trace (request count scales with the client count so every
/// connection gets work). Closed and open runs of one client count must
/// produce byte-identical response multisets; the digests land in the
/// output file, which CI re-checks against a fresh run.
fn run_bench_matrix(addr: &str, graphs: &[String], seed: u64, clients_list: &[usize], out: &str) {
    let mut rows: Vec<String> = Vec::new();
    let mut failed = false;
    for &clients in clients_list {
        let requests = (clients * 2).max(1000);
        let trace = synthetic_trace(requests, graphs, seed);
        let rate = (clients as f64).max(1000.0);
        let mut digests = Vec::new();
        for mode in ["closed", "open"] {
            eprintln!("matrix: {clients} clients, {mode} loop, {requests} requests ...");
            let run = run_evented_bench(addr, &trace, clients, mode, rate);
            eprintln!(
                "matrix: {clients} clients {mode}: p50 {} us, p99 {} us, p99.9 {} us | {:.1} req/s | {} errors",
                run.p50_us, run.p99_us, run.p999_us, run.throughput_rps, run.errors
            );
            if run.errors > 0 {
                failed = true;
            }
            digests.push(run.digest);
            rows.push(format!(
                "{{\"clients\":{},\"digest\":\"{:016x}\",\"errors\":{},\"mode\":\"{}\",\"p50_us\":{},\"p999_us\":{},\"p99_us\":{},\"rate\":{},\"requests\":{},\"throughput_rps\":{:.1},\"wall_ms\":{}}}",
                run.clients,
                run.digest,
                run.errors,
                run.mode,
                run.p50_us,
                run.p999_us,
                run.p99_us,
                run.rate,
                run.requests,
                run.throughput_rps,
                run.wall_ms
            ));
        }
        if digests[0] != digests[1] {
            eprintln!(
                "matrix: closed vs open digests differ at {clients} clients: {:016x} vs {:016x}",
                digests[0], digests[1]
            );
            failed = true;
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let graphs_json = graphs
        .iter()
        .map(|g| format!("\"{g}\""))
        .collect::<Vec<_>>()
        .join(",");
    let doc = format!(
        "{{\"bench\":\"serve-matrix\",\"graphs\":[{graphs_json}],\"machine\":{{\"arch\":\"{}\",\"cores\":{cores},\"os\":\"{}\"}},\"rows\":[{}],\"seed\":{seed}}}\n",
        std::env::consts::ARCH,
        std::env::consts::OS,
        rows.join(",")
    );
    std::fs::write(out, &doc).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("matrix: wrote {out}");
    if failed {
        std::process::exit(1);
    }
}

fn cmd_bench_serve(rest: &[String]) {
    let mut addr = String::new();
    let mut requests = 50usize;
    let mut clients = 8usize;
    let mut mode: &'static str = "closed";
    let mut rate = 0.0f64;
    let mut graphs = vec!["main".to_string()];
    let mut trace_file: Option<String> = None;
    let mut seed = 0u64;
    let mut json = false;
    let mut matrix = false;
    let mut clients_list = vec![100usize, 1000, 10000];
    let mut out = "BENCH_serve.json".to_string();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--addr" => addr = next("--addr"),
            "--requests" => requests = next("--requests").parse().unwrap_or_else(|_| usage()),
            "--clients" | "--concurrency" => {
                clients = next("--clients").parse().unwrap_or_else(|_| usage())
            }
            "--mode" => {
                mode = match next("--mode").as_str() {
                    "closed" => "closed",
                    "open" => "open",
                    _ => usage(),
                }
            }
            "--rate" => rate = next("--rate").parse().unwrap_or_else(|_| usage()),
            "--graphs" => graphs = next("--graphs").split(',').map(str::to_string).collect(),
            "--trace-file" => trace_file = Some(next("--trace-file")),
            "--seed" => seed = next("--seed").parse().unwrap_or_else(|_| usage()),
            "--json" => json = true,
            "--matrix" => matrix = true,
            "--clients-list" => {
                clients_list = next("--clients-list")
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--out" => out = next("--out"),
            _ => usage(),
        }
    }
    if addr.is_empty() {
        eprintln!("bench-serve needs --addr HOST:PORT");
        std::process::exit(2);
    }
    // Ten thousand sockets need more than the usual 1024-fd soft limit.
    let _ = mio::sys::raise_nofile_limit(65_536);

    if matrix {
        run_bench_matrix(&addr, &graphs, seed, &clients_list, &out);
        return;
    }

    let trace: Vec<String> = match &trace_file {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            })
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(str::to_string)
            .collect(),
        None => synthetic_trace(requests, &graphs, seed),
    };
    if mode == "open" && rate <= 0.0 {
        rate = 1000.0;
    }
    let run = run_evented_bench(&addr, &trace, clients, mode, rate);
    print_bench_run(&run, json);
    if run.errors > 0 {
        std::process::exit(1);
    }
}

// ---------------------------------------------------------------------------
// `domatic scenario` — the seeded churn campaign runner.
// ---------------------------------------------------------------------------

/// One blocking JSON-lines connection to a live server. Requests carry
/// ids from a single monotone counter and are strictly
/// request/response, so the byte stream a campaign observes is a pure
/// function of (seed, quick) — independent of the server's shard count,
/// which is exactly what the CI matrix gates on.
struct ScenarioClient {
    stream: std::net::TcpStream,
    reader: std::io::BufReader<std::net::TcpStream>,
    next_id: u64,
}

impl ScenarioClient {
    fn connect(addr: &str) -> ScenarioClient {
        let stream = std::net::TcpStream::connect(addr).unwrap_or_else(|e| {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        });
        let reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
        ScenarioClient {
            stream,
            reader,
            next_id: 0,
        }
    }

    /// Sends `{"id":<next>,<body>}` and blocks for the one response
    /// line. Returns the trimmed line and the round-trip micros.
    fn rpc(&mut self, body: &str) -> (String, u64) {
        use std::io::{BufRead, Write};
        self.next_id += 1;
        let start = std::time::Instant::now();
        writeln!(self.stream, "{{\"id\":{},{body}}}", self.next_id).unwrap_or_else(|e| {
            eprintln!("scenario: write failed: {e}");
            std::process::exit(1);
        });
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => {
                eprintln!("scenario: server closed the connection");
                std::process::exit(1);
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("scenario: read failed: {e}");
                std::process::exit(1);
            }
        }
        let us = start.elapsed().as_micros() as u64;
        (line.trim_end().to_string(), us)
    }
}

/// Accumulator for one campaign: receipt-order response lines (the
/// digest input), latencies, request-class counts, and every envelope
/// violation the campaign noticed.
struct ScenarioRun {
    name: &'static str,
    lines: Vec<String>,
    latencies_us: Vec<u64>,
    errors: u64,
    mutations: u64,
    solves: u64,
    violations: Vec<String>,
    wall_ms: u128,
}

impl ScenarioRun {
    fn new(name: &'static str) -> ScenarioRun {
        ScenarioRun {
            name,
            lines: Vec::new(),
            latencies_us: Vec::new(),
            errors: 0,
            mutations: 0,
            solves: 0,
            violations: Vec::new(),
            wall_ms: 0,
        }
    }

    /// The `result` object's text inside a response line, if the line
    /// is an `ok` response. Byte-exact slicing (no re-render) so two
    /// results compare equal iff the server sent identical payloads.
    fn result_slice(line: &str) -> Option<&str> {
        let idx = line.find("\"result\":")?;
        line.get(idx + "\"result\":".len()..line.len() - 1)
    }

    /// One round trip through `client`, recording the line, the
    /// latency, and whether the server said ok. Returns the response
    /// line on success, `None` (and counts an error) otherwise.
    fn call(&mut self, client: &mut ScenarioClient, body: &str) -> Option<String> {
        let (line, us) = client.rpc(body);
        self.latencies_us.push(us);
        self.lines.push(line.clone());
        let ok = domatic_telemetry::json::parse(&line)
            .ok()
            .and_then(|v| v.get("ok").cloned())
            .is_some_and(|b| matches!(b, domatic_telemetry::json::Json::Bool(true)));
        if ok {
            Some(line)
        } else {
            self.errors += 1;
            self.violations
                .push(format!("{}: error response: {line}", self.name));
            None
        }
    }

    /// A `mutate` round trip; returns the parsed result object.
    fn mutate(
        &mut self,
        client: &mut ScenarioClient,
        body: &str,
    ) -> Option<domatic_telemetry::json::Json> {
        self.mutations += 1;
        let line = self.call(client, body)?;
        domatic_telemetry::json::parse(&line)
            .ok()
            .and_then(|v| v.get("result").cloned())
    }

    /// A `solve` round trip; enforces the lifetime envelope and returns
    /// the byte-exact result slice.
    fn solve(
        &mut self,
        client: &mut ScenarioClient,
        graph: &str,
        alg: &str,
        seed: u64,
    ) -> Option<String> {
        self.solves += 1;
        let body =
            format!("\"op\":\"solve\",\"graph\":\"{graph}\",\"alg\":\"{alg}\",\"b\":3,\"k\":1,\"seed\":{seed}");
        let line = self.call(client, &body)?;
        let lifetime = domatic_telemetry::json::parse(&line).ok().and_then(|v| {
            v.get("result")
                .and_then(|r| r.get("lifetime"))
                .and_then(|l| l.as_int())
        });
        match lifetime {
            Some(l) if l >= 1 => {}
            other => self.violations.push(format!(
                "{}: solve lifetime envelope violated (lifetime {other:?} < 1): {line}",
                self.name
            )),
        }
        Self::result_slice(&line).map(str::to_string)
    }

    fn digest(&self) -> u64 {
        let mut h = domatic::core::hash::CanonicalHasher::new();
        for line in &self.lines {
            h.write_str(line);
        }
        h.finish()
    }

    fn quantile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        sorted[((sorted.len() as f64 - 1.0) * p).round() as usize]
    }

    /// The campaign's row in `BENCH_scenarios.json` — alphabetical
    /// field order, hand-rendered like every other bench artifact.
    fn row(&self) -> String {
        format!(
            "{{\"digest\":\"{:016x}\",\"errors\":{},\"mutations\":{},\"name\":\"{}\",\"p50_us\":{},\"p99_us\":{},\"requests\":{},\"solves\":{},\"wall_ms\":{}}}",
            self.digest(),
            self.errors,
            self.mutations,
            self.name,
            self.quantile_us(0.50),
            self.quantile_us(0.99),
            self.lines.len(),
            self.solves,
            self.wall_ms
        )
    }
}

/// A tiny deterministic index mixer for node/edge picks — NOT meant to
/// be a good PRNG, just a seed-sensitive, platform-stable spreading
/// function (splitmix-style multiply-xor).
fn scenario_pick(seed: u64, round: u64, salt: u64, modulus: u64) -> u64 {
    let mut x = seed
        .wrapping_add(round.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(salt.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    x ^= x >> 30;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 27;
    x % modulus
}

/// Crash waves: batches of `remove_node` against the Erdős–Rényi
/// `crash` graph, with `bounds` + `solve` probes after every wave. The
/// node ids shift down on each removal (the protocol compacts), so the
/// picks below are against the *current* population.
fn scenario_crash_wave(client: &mut ScenarioClient, quick: bool, seed: u64) -> ScenarioRun {
    let mut run = ScenarioRun::new("crash-wave");
    let start = std::time::Instant::now();
    let waves = if quick { 3 } else { 6 };
    let mut n: u64 = 32;
    run.solve(client, "crash", "greedy", seed);
    for wave in 0..waves {
        for j in 0..2u64 {
            let node = scenario_pick(seed, wave, j, n);
            run.mutate(
                client,
                &format!("\"op\":\"mutate\",\"graph\":\"crash\",\"action\":\"remove_node\",\"node\":{node}"),
            );
            n -= 1;
        }
        run.call(
            client,
            "\"op\":\"bounds\",\"graph\":\"crash\",\"b\":3,\"k\":1",
        );
        run.solve(client, "crash", "greedy", seed);
    }
    run.wall_ms = start.elapsed().as_millis();
    run
}

/// Link flap: remove an edge of the `flap` ring, re-solve, add it back,
/// re-solve — and require the post-re-add solve to be byte-identical to
/// the pre-flap baseline. The re-added graph has the same content hash
/// as the original, so this exercises the cache's tombstone *revive*
/// path end to end.
fn scenario_link_flap(client: &mut ScenarioClient, quick: bool, seed: u64) -> ScenarioRun {
    let mut run = ScenarioRun::new("link-flap");
    let start = std::time::Instant::now();
    let flips = if quick { 3 } else { 8 };
    let baseline = run.solve(client, "flap", "greedy", seed);
    for flip in 0..flips {
        let u = scenario_pick(seed, flip, 1, 24);
        let v = (u + 1) % 24;
        run.mutate(
            client,
            &format!("\"op\":\"mutate\",\"graph\":\"flap\",\"action\":\"remove_edge\",\"u\":{u},\"v\":{v}"),
        );
        run.solve(client, "flap", "greedy", seed);
        run.mutate(
            client,
            &format!(
                "\"op\":\"mutate\",\"graph\":\"flap\",\"action\":\"add_edge\",\"u\":{u},\"v\":{v}"
            ),
        );
        let restored = run.solve(client, "flap", "greedy", seed);
        if restored != baseline {
            run.violations.push(format!(
                "link-flap: re-added edge ({u},{v}) did not restore the baseline solve bytes"
            ));
        }
    }
    run.wall_ms = start.elapsed().as_millis();
    run
}

/// Battery recharge: drain one node to 1 unit, re-solve under the
/// non-uniform overlay, recharge it past the default, re-solve. Uses
/// `greedy` throughout — the closed-form `uniform` solver rightly
/// refuses non-uniform batteries.
fn scenario_battery_recharge(client: &mut ScenarioClient, quick: bool, seed: u64) -> ScenarioRun {
    let mut run = ScenarioRun::new("battery-recharge");
    let start = std::time::Instant::now();
    let cycles = if quick { 3 } else { 6 };
    run.solve(client, "recharge", "greedy", seed);
    for cycle in 0..cycles {
        let node = scenario_pick(seed, cycle, 2, 18);
        run.mutate(
            client,
            &format!("\"op\":\"mutate\",\"graph\":\"recharge\",\"action\":\"set_battery\",\"node\":{node},\"value\":1"),
        );
        run.solve(client, "recharge", "greedy", seed);
        run.mutate(
            client,
            &format!("\"op\":\"mutate\",\"graph\":\"recharge\",\"action\":\"set_battery\",\"node\":{node},\"value\":4"),
        );
        run.solve(client, "recharge", "greedy", seed);
    }
    run.wall_ms = start.elapsed().as_millis();
    run
}

/// Dense-linear growth: the adversarial banded topology from the paper's
/// lower-bound family, grown one node at a time (`add_node` wired to its
/// three predecessors). Checks the mutate result's `n` climbs by exactly
/// one per step.
fn scenario_dense_growth(client: &mut ScenarioClient, quick: bool, seed: u64) -> ScenarioRun {
    let mut run = ScenarioRun::new("dense-growth");
    let start = std::time::Instant::now();
    let steps = if quick { 3 } else { 8 };
    let mut n: u64 = 12;
    run.solve(client, "dense", "greedy", seed);
    for _ in 0..steps {
        let result = run.mutate(
            client,
            &format!(
                "\"op\":\"mutate\",\"graph\":\"dense\",\"action\":\"add_node\",\"neighbors\":[{},{},{}]",
                n - 1,
                n - 2,
                n - 3
            ),
        );
        n += 1;
        let got = result
            .as_ref()
            .and_then(|r| r.get("n"))
            .and_then(|v| v.as_int());
        if got != Some(n as i128) {
            run.violations.push(format!(
                "dense-growth: add_node reported n {got:?}, expected {n}"
            ));
        }
        run.solve(client, "dense", "greedy", seed);
    }
    run.wall_ms = start.elapsed().as_millis();
    run
}

/// `domatic scenario`: replays the four seeded churn campaigns against
/// a live server and writes `BENCH_scenarios.json`. Exit status is the
/// envelope verdict — nonzero if any campaign saw an error response, a
/// solve below the lifetime floor, or a broken restore-equality check.
/// Digests hash the receipt-order response bytes, so CI can require
/// them byte-identical across shard counts and against the committed
/// artifact while leaving timings advisory.
fn cmd_scenario(rest: &[String]) {
    let mut addr = String::new();
    let mut quick = false;
    let mut seed = 0u64;
    let mut out = "BENCH_scenarios.json".to_string();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--addr" => addr = next("--addr"),
            "--quick" => quick = true,
            "--seed" => seed = next("--seed").parse().unwrap_or_else(|_| usage()),
            "--out" => out = next("--out"),
            _ => usage(),
        }
    }
    if addr.is_empty() {
        eprintln!("scenario needs --addr HOST:PORT");
        std::process::exit(2);
    }
    let mut client = ScenarioClient::connect(&addr);
    let runs = [
        scenario_crash_wave(&mut client, quick, seed),
        scenario_link_flap(&mut client, quick, seed),
        scenario_battery_recharge(&mut client, quick, seed),
        scenario_dense_growth(&mut client, quick, seed),
    ];
    let mut failed = false;
    for run in &runs {
        eprintln!(
            "scenario {}: {} requests ({} mutations, {} solves), {} errors, digest {:016x}, p99 {} us, {} ms",
            run.name,
            run.lines.len(),
            run.mutations,
            run.solves,
            run.errors,
            run.digest(),
            run.quantile_us(0.99),
            run.wall_ms
        );
        for v in &run.violations {
            eprintln!("scenario VIOLATION: {v}");
            failed = true;
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rows: Vec<String> = runs.iter().map(ScenarioRun::row).collect();
    let doc = format!(
        "{{\"bench\":\"scenarios\",\"machine\":{{\"arch\":\"{}\",\"cores\":{cores},\"os\":\"{}\"}},\"quick\":{quick},\"rows\":[{}],\"seed\":{seed}}}\n",
        std::env::consts::ARCH,
        std::env::consts::OS,
        rows.join(",")
    );
    std::fs::write(&out, &doc).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("scenario: wrote {out}");
    if failed {
        std::process::exit(1);
    }
}
