//! Plain-text table rendering for the experiment harness.

/// A simple aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table caption printed above the header.
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// An empty table with the given caption and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Appends a footnote printed under the table.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Column headers, in order.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Footnotes, in insertion order.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// The table as a JSON object (`{title, headers, rows, notes}`) —
    /// the shape `experiments --json` emits.
    pub fn to_json(&self) -> domatic_telemetry::json::Json {
        use domatic_telemetry::json::Json;
        let strs = |xs: &[String]| Json::Arr(xs.iter().map(|s| Json::Str(s.clone())).collect());
        Json::obj([
            ("title".into(), Json::Str(self.title.clone())),
            ("headers".into(), strs(&self.headers)),
            (
                "rows".into(),
                Json::Arr(self.rows.iter().map(|r| strs(r)).collect()),
            ),
            ("notes".into(), strs(&self.notes)),
        ])
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for r in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(r[c].chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                let pad = widths[c] - cell.chars().count();
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

/// Formats a float with 2 decimals (the harness's standard precision).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["xxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1], "a    bbbb");
        assert_eq!(lines[3], "xxx  1");
        assert_eq!(lines[4], "y    22");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new("t", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn notes_render() {
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]).note("hello");
        assert!(t.render().contains("note: hello"));
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.005), "1.00"); // bankers-ish rounding of format!
        assert_eq!(f2(2.0), "2.00");
        assert_eq!(f3(0.12345), "0.123");
    }

    #[test]
    fn json_shape_round_trips() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]).note("n");
        let v = domatic_telemetry::json::parse(&t.to_json().render()).unwrap();
        assert_eq!(v.get("title").unwrap().as_str(), Some("demo"));
        let headers = match v.get("headers").unwrap() {
            domatic_telemetry::json::Json::Arr(xs) => xs.len(),
            _ => panic!("headers not an array"),
        };
        assert_eq!(headers, 2);
        assert!(t.to_json().render().contains("\"notes\":[\"n\"]"));
    }
}
