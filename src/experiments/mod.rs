//! The experiment suite: every quantitative claim of the paper, as a
//! regenerable table.
//!
//! The paper has one quantitative figure (Figure 1) and no evaluation
//! tables — its results are lemmas and theorems. The reproduction
//! therefore (a) reproduces Figure 1 exactly (E1) and (b) validates every
//! quantitative claim empirically (E2–E10). DESIGN.md §3 is the index;
//! EXPERIMENTS.md records paper-vs-measured for each.
//!
//! Run any experiment with `cargo run --release --bin experiments -- <id>`
//! (`all` runs the suite).

pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e15;
pub mod e16;
pub mod e17;
pub mod e18;
pub mod e19;
pub mod e2;
pub mod e20;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;
pub mod stats;
pub mod table;
pub mod workloads;

use table::Table;

/// An experiment's id, headline, and runner.
pub struct Experiment {
    /// Identifier accepted on the command line (e.g. `"e1"`).
    pub id: &'static str,
    /// What it reproduces.
    pub summary: &'static str,
    /// Produces the experiment's tables.
    pub run: fn() -> Vec<Table>,
}

/// The registry, in presentation order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            summary: "Figure 1: the worked example, exact optimum 6",
            run: e1::run,
        },
        Experiment {
            id: "e2",
            summary: "Theorem 4.3: uniform algorithm is O(log n)-approx",
            run: e2::run,
        },
        Experiment {
            id: "e3",
            summary: "Lemma 4.2: color classes dominate w.h.p.",
            run: e3::run,
        },
        Experiment {
            id: "e4",
            summary: "Theorem 5.3: general (non-uniform) batteries",
            run: e4::run,
        },
        Experiment {
            id: "e5",
            summary: "Theorem 6.2: k-tolerant, both regimes",
            run: e5::run,
        },
        Experiment {
            id: "e6",
            summary: "Greedy baseline and its Ω(√n) collapse",
            run: e6::run,
        },
        Experiment {
            id: "e7",
            summary: "Feige et al. Ω(δ/ln Δ) partition, constructively",
            run: e7::run,
        },
        Experiment {
            id: "e8",
            summary: "Distributed cost: constant rounds, O(1) msgs/node",
            run: e8::run,
        },
        Experiment {
            id: "e9",
            summary: "End-to-end network-lifetime simulation",
            run: e9::run,
        },
        Experiment {
            id: "e10",
            summary: "Ablations: range constant c, best-of-R restarts",
            run: e10::run,
        },
        Experiment {
            id: "e11",
            summary: "Extension (§7): connected-clustering lifetime",
            run: e11::run,
        },
        Experiment {
            id: "e12",
            summary: "Extension (§7): general k-tolerant heuristic",
            run: e12::run,
        },
        Experiment {
            id: "e13",
            summary: "Extension (§7): sensitivity to the n estimate",
            run: e13::run,
        },
        Experiment {
            id: "e14",
            summary: "Extension: data-gathering delivery cost",
            run: e14::run,
        },
        Experiment {
            id: "e15",
            summary: "Ablation: dwell time vs switching cost",
            run: e15::run,
        },
        Experiment {
            id: "e16",
            summary: "Extension: multi-epoch rescheduling",
            run: e16::run,
        },
        Experiment {
            id: "e17",
            summary: "Extension: MAC cost of one round over slotted ALOHA",
            run: e17::run,
        },
        Experiment {
            id: "e18",
            summary: "Extension: partition augmentation (local search)",
            run: e18::run,
        },
        Experiment {
            id: "e19",
            summary: "Extension: failure survival — static vs adaptive execution",
            run: e19::run,
        },
        Experiment {
            id: "e20",
            summary: "Extension: solver portfolio — local search vs paper vs exact LP",
            run: e20::run,
        },
    ]
}

/// Runs one experiment by id; `None` if the id is unknown.
pub fn run_by_id(id: &str) -> Option<Vec<Table>> {
    registry()
        .into_iter()
        .find(|e| e.id == id)
        .map(|e| (e.run)())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_e1_to_e10() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id).collect();
        for want in [
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13",
            "e14", "e15", "e16", "e17", "e18", "e19", "e20",
        ] {
            assert!(ids.contains(&want), "{want} missing");
        }
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_by_id("e99").is_none());
    }

    #[test]
    fn e1_runs_by_id() {
        let tables = run_by_id("e1").unwrap();
        assert!(!tables.is_empty());
    }
}
