//! E8 — the distributed cost claim: constant rounds, one broadcast per
//! node per round, payloads of a few bytes.
//!
//! The paper (§1): "all our algorithms are completely distributed and
//! require only a constant number of communication rounds." The table
//! shows measured rounds and per-node message counts staying flat as n
//! grows 16×.

use crate::experiments::table::{f2, Table};
use crate::experiments::workloads::{random_batteries, Family};
use domatic_distsim::protocols::fault_tolerant::distributed_fault_tolerant_schedule;
use domatic_distsim::protocols::general::distributed_general_schedule;
use domatic_distsim::protocols::luby::distributed_luby_mis;
use domatic_distsim::protocols::uniform::distributed_uniform_schedule;

/// Runs E8 and returns its tables.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E8 / distributed cost — rounds and messages per node vs network size",
        &[
            "protocol",
            "n",
            "rounds",
            "tx/node",
            "rx/node",
            "bytes/node",
        ],
    );
    let family = Family::Rgg { avg_degree: 20.0 };
    for n in [250usize, 1000, 4000] {
        let g = family.build(n, 11 + n as u64);
        let (_, _, s_u) = distributed_uniform_schedule(&g, 3, 3.0, 0, 4);
        t.row(vec![
            "uniform (Alg 1)".into(),
            n.to_string(),
            s_u.rounds.to_string(),
            f2(s_u.transmissions_per_node(n)),
            f2(s_u.receptions_per_node(n)),
            f2(s_u.bytes_received as f64 / n as f64),
        ]);
        let b = random_batteries(n, 5, 77);
        let (_, _, s_g) = distributed_general_schedule(&g, &b, 3.0, 0, 4);
        t.row(vec![
            "general (Alg 2)".into(),
            n.to_string(),
            s_g.rounds.to_string(),
            f2(s_g.transmissions_per_node(n)),
            f2(s_g.receptions_per_node(n)),
            f2(s_g.bytes_received as f64 / n as f64),
        ]);
        let run = distributed_fault_tolerant_schedule(&g, 4, 2, 3.0, 0, 4);
        t.row(vec![
            "k-tolerant (Alg 3)".into(),
            n.to_string(),
            run.stats.rounds.to_string(),
            f2(run.stats.transmissions_per_node(n)),
            f2(run.stats.receptions_per_node(n)),
            f2(run.stats.bytes_received as f64 / n as f64),
        ]);
    }
    t.note("rounds and tx/node are exactly constant (1, 2, 1); rx/node and bytes/node track average degree, not n");

    // Contrast: the Luby-MIS baseline (§3) needs Θ(log n) rounds — its
    // quiescence round grows with n while the scheduling protocols' stays 1.
    let mut luby = Table::new(
        "E8b / contrast — Luby MIS round complexity grows with n (scheduling protocols stay constant)",
        &["n", "rounds to quiesce", "ln n", "tx/node", "MIS size"],
    );
    for n in [250usize, 1000, 4000, 16000] {
        let g = family.build(n, 11 + n as u64);
        let run = distributed_luby_mis(&g, 3, 60, 4);
        assert!(run.complete, "luby did not quiesce at n = {n}");
        luby.row(vec![
            n.to_string(),
            run.rounds_to_quiesce.to_string(),
            f2((n as f64).ln()),
            f2(run.stats.transmissions_per_node(n)),
            run.mis.len().to_string(),
        ]);
    }
    luby.note("each Luby phase = 2 engine rounds; quiescence tracks O(log n), the scheduling protocols use 1–2 rounds total");
    vec![t, luby]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_are_constant_in_n() {
        let family = Family::Rgg { avg_degree: 20.0 };
        let g_small = family.build(250, 11 + 250);
        let g_big = family.build(1000, 11 + 1000);
        let (_, _, a) = distributed_uniform_schedule(&g_small, 3, 3.0, 0, 2);
        let (_, _, b) = distributed_uniform_schedule(&g_big, 3, 3.0, 0, 2);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.transmissions_per_node(250), 1.0);
        assert_eq!(b.transmissions_per_node(1000), 1.0);
    }
}
