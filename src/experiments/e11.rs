//! E11 — extension: maximum-lifetime *connected* clustering (§7's open
//! problem).
//!
//! Connectivity is a real tax: a connected dominating set needs extra
//! backbone nodes, and disjoint CDSs are scarcer than disjoint DSs. The
//! table quantifies the tax across families by comparing the plain greedy
//! domatic partition, the greedy *connected* partition, and the
//! color-then-connect schedule built from Algorithm 1.

use crate::experiments::table::{f2, Table};
use crate::experiments::workloads::Family;
use domatic_core::cds::{
    all_entries_connected, connected_uniform_schedule, greedy_connected_partition,
};
use domatic_core::greedy::greedy_domatic_partition;
use domatic_core::uniform::UniformParams;
use domatic_schedule::{validate_schedule, Batteries};

/// Runs E11 and returns its tables.
pub fn run() -> Vec<Table> {
    let b = 2u64;
    let mut t = Table::new(
        format!("E11 / connected clustering — the connectivity tax (b={b})"),
        &[
            "family",
            "n",
            "plain classes",
            "connected classes",
            "colored+connected lifetime",
            "mean CDS size / mean DS size",
        ],
    );
    for (family, n) in [
        (Family::Gnp { avg_degree: 50.0 }, 200usize),
        (Family::Gnp { avg_degree: 150.0 }, 400),
        (Family::Rgg { avg_degree: 50.0 }, 200),
    ] {
        let g = family.build(n, 19 + n as u64);
        let plain = greedy_domatic_partition(&g);
        let connected = greedy_connected_partition(&g);
        let run = connected_uniform_schedule(&g, b, &UniformParams { c: 3.0, seed: 5 });
        let batteries = Batteries::uniform(g.n(), b);
        validate_schedule(&g, &batteries, &run.schedule, 1).expect("connected schedule valid");
        assert!(all_entries_connected(&g, &run.schedule));
        let mean = |sets: &[domatic_graph::NodeSet]| {
            if sets.is_empty() {
                0.0
            } else {
                sets.iter().map(|s| s.len()).sum::<usize>() as f64 / sets.len() as f64
            }
        };
        let size_ratio = if mean(&plain) > 0.0 {
            mean(&connected) / mean(&plain)
        } else {
            0.0
        };
        t.row(vec![
            family.label(),
            n.to_string(),
            plain.len().to_string(),
            connected.len().to_string(),
            run.schedule.lifetime().to_string(),
            f2(size_ratio),
        ]);
    }
    t.note(
        "connected classes ≤ plain classes: backbones consume extra nodes (the ≤ 3× size factor)",
    );
    t.note("no approximation guarantee exists for this problem — the paper leaves it open; these are heuristics");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_never_beats_plain_partition_size() {
        let g = Family::Gnp { avg_degree: 50.0 }.build(200, 19 + 200);
        let plain = greedy_domatic_partition(&g).len();
        let connected = greedy_connected_partition(&g).len();
        assert!(connected <= plain, "connected {connected} > plain {plain}");
        assert!(connected >= 1);
    }
}
