//! E18 — extension: partition augmentation (local search).
//!
//! How much of the gap between a partition and the `δ+1` ceiling can a
//! cheap local search recover? The augmentation mines the unused pool and
//! the redundant members of existing classes for additional disjoint
//! dominating sets. Gains are largest on the randomized partition (big,
//! redundant classes) and smallest on greedy (already tight).

use crate::experiments::table::Table;
use crate::experiments::workloads::Family;
use domatic_core::augment::augment_partition;
use domatic_core::feige::{feige_partition, FeigeParams};
use domatic_core::greedy::greedy_domatic_partition;
use domatic_core::uniform::{uniform_coloring, UniformParams};
use domatic_graph::domination::is_dominating_set;
use domatic_graph::{Graph, NodeSet};

fn randomized_valid_classes(g: &Graph, seed: u64) -> Vec<NodeSet> {
    let ca = uniform_coloring(g, &UniformParams { c: 3.0, seed });
    ca.classes(g.n())
        .into_iter()
        .filter(|c| !c.is_empty() && is_dominating_set(g, c))
        .collect()
}

/// Runs E18 and returns its tables.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E18 / partition augmentation — extra disjoint dominating sets from local search",
        &[
            "family", "n", "δ+1", "input", "before", "after", "added", "stolen",
        ],
    );
    for (family, n) in [
        (Family::Gnp { avg_degree: 80.0 }, 300usize),
        (Family::Gnp { avg_degree: 150.0 }, 400),
        (Family::Rgg { avg_degree: 60.0 }, 300),
    ] {
        let g = family.build(n, 83 + n as u64);
        let ceiling = g.min_degree().unwrap() + 1;
        let inputs: Vec<(&str, Vec<NodeSet>)> = vec![
            ("randomized (Alg 1)", randomized_valid_classes(&g, 1)),
            (
                "feige-repair",
                feige_partition(
                    &g,
                    &FeigeParams {
                        c: 3.0,
                        max_sweeps: 40,
                        seed: 1,
                    },
                )
                .classes,
            ),
            ("greedy", greedy_domatic_partition(&g)),
        ];
        for (label, classes) in inputs {
            let before = classes.len();
            let res = augment_partition(&g, classes);
            t.row(vec![
                family.label(),
                n.to_string(),
                ceiling.to_string(),
                label.to_string(),
                before.to_string(),
                res.classes.len().to_string(),
                res.added.to_string(),
                res.stolen.to_string(),
            ]);
        }
    }
    t.note("augmentation lifts the theory-backed partitions most — their classes are n/#classes nodes each, hugely redundant");
    t.note("the lifted randomized partition keeps its distributed pedigree: the local search is a centralized post-pass an operator can run");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use domatic_graph::domination::is_disjoint_dominating_family;

    #[test]
    fn augmentation_never_regresses_and_stays_valid() {
        let g = Family::Gnp { avg_degree: 80.0 }.build(300, 83 + 300);
        for input in [
            randomized_valid_classes(&g, 1),
            greedy_domatic_partition(&g),
        ] {
            let before = input.len();
            let res = augment_partition(&g, input);
            assert!(res.classes.len() >= before);
            assert!(is_disjoint_dominating_family(&g, &res.classes));
        }
    }
}
