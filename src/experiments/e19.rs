//! E19 — extension: graceful degradation under failures, static vs
//! adaptive execution.
//!
//! The paper's schedules are computed once and executed open-loop; any
//! node crash or battery surprise silently ends coverage. The adaptive
//! runtime (`domatic_netsim::adaptive`) executes the same initial
//! schedule as a control loop: it watches for divergence and re-plans
//! over the surviving subgraph with the residual budgets. This
//! experiment quantifies what that buys under each failure model —
//! crashes, battery drift, transient radio loss, and all three at once —
//! at a fixed seed (the failure trace is pre-drawn, so static and
//! adaptive face *identical* adversity).

use crate::experiments::table::Table;
use crate::experiments::workloads::Family;
use domatic_core::solver::{GeneralSolver, SolverConfig};
use domatic_netsim::{compare_static_adaptive, AdaptiveConfig, FailureModel, FailurePlan};
use domatic_schedule::Batteries;

/// The failure regimes compared, as `(label, models)` rows.
fn regimes() -> Vec<(&'static str, Vec<FailureModel>)> {
    vec![
        ("crash", vec![FailureModel::Crash { p: 0.004 }]),
        (
            "battery-noise",
            vec![FailureModel::BatteryNoise { p: 0.15 }],
        ),
        (
            "transient-loss",
            vec![FailureModel::TransientLoss { p: 0.05 }],
        ),
        (
            "all",
            vec![
                FailureModel::Crash { p: 0.004 },
                FailureModel::BatteryNoise { p: 0.15 },
                FailureModel::TransientLoss { p: 0.05 },
            ],
        ),
    ]
}

/// Runs E19 and returns its tables.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E19 / failure survival — static (open-loop) vs adaptive (replanning) execution",
        &[
            "family", "n", "failures", "planned", "static", "adaptive", "delta", "replans",
            "retries", "deaths", "end",
        ],
    );
    let solver = GeneralSolver;
    let scfg = SolverConfig::new().seed(17).trials(8);
    for (family, n, b) in [
        (Family::Gnp { avg_degree: 25.0 }, 200usize, 6u64),
        (Family::Rgg { avg_degree: 20.0 }, 200, 6),
    ] {
        let g = family.build(n, 23 + n as u64);
        let batteries = Batteries::uniform(g.n(), b);
        for (label, models) in regimes() {
            let acfg = AdaptiveConfig {
                max_slots: 5_000,
                ..AdaptiveConfig::default()
            };
            let plan = FailurePlan::draw(&models, g.n(), acfg.max_slots, 90 + n as u64);
            let cmp = compare_static_adaptive(&g, &batteries, &solver, &scfg, &acfg, &plan)
                .expect("uniform batteries are always schedulable");
            t.row(vec![
                family.label(),
                n.to_string(),
                label.to_string(),
                cmp.planned.to_string(),
                cmp.static_run.lifetime.to_string(),
                cmp.adaptive.lifetime.to_string(),
                format!("{:+}", cmp.delta()),
                cmp.adaptive.replans.to_string(),
                cmp.adaptive.retries.to_string(),
                cmp.adaptive.deaths.to_string(),
                cmp.adaptive.end.label().to_string(),
            ]);
        }
    }
    t.note("both columns execute the same initial schedule against the same pre-drawn failure trace; only the control loop differs");
    t.note("crash: adaptive re-plans around dead nodes; battery-noise: drift telemetry triggers re-plans before brown-outs;");
    t.note("transient-loss: per-slot retries absorb radio fades; replanning also harvests residual energy the static plan strands");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar: at a fixed seed, adaptive execution survives at
    /// least as long as static under *every* failure model.
    #[test]
    fn adaptive_never_worse_than_static_under_any_regime() {
        let solver = GeneralSolver;
        let scfg = SolverConfig::new().seed(17).trials(4);
        let g = Family::Gnp { avg_degree: 25.0 }.build(120, 23 + 120);
        let batteries = Batteries::uniform(g.n(), 5);
        for (label, models) in regimes() {
            let acfg = AdaptiveConfig {
                max_slots: 2_000,
                ..AdaptiveConfig::default()
            };
            let plan = FailurePlan::draw(&models, g.n(), acfg.max_slots, 90 + 120);
            let cmp =
                compare_static_adaptive(&g, &batteries, &solver, &scfg, &acfg, &plan).unwrap();
            assert!(
                cmp.adaptive.lifetime >= cmp.static_run.lifetime,
                "{label}: adaptive {} < static {}",
                cmp.adaptive.lifetime,
                cmp.static_run.lifetime
            );
        }
    }
}
