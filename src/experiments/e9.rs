//! E9 — end-to-end network-lifetime simulation (the paper's motivation).
//!
//! Strategies on the same sensor field with the same batteries:
//!
//! - `all-active` — no clustering: lifetime = one battery.
//! - `single-mds(static)` — "find the best dominating set" without
//!   lifetime planning: the network *still* dies after one battery (the
//!   paper's strawman — the dominators deplete together), it just burns
//!   less total energy doing so.
//! - rotation strategies — any family of disjoint dominating sets
//!   multiplies lifetime by its size: the randomized Algorithm-1/Feige
//!   classes and the greedy partition, plus adaptive baselines.
//!
//! E9b quantifies §6's motivation: how often does a *single node crash*
//! inside the active set break coverage? 1-dominating rotations are
//! fragile; merging k = 2 classes (Algorithm 3's construction) makes every
//! single crash survivable by definition.

use crate::experiments::table::{f2, f3, Table};
use crate::experiments::workloads::Family;
use domatic_core::feige::{feige_partition, FeigeParams};
use domatic_core::greedy::greedy_domatic_partition;
use domatic_core::uniform::{uniform_coloring, UniformParams};
use domatic_graph::domination::{dominator_count, is_dominating_set};
use domatic_graph::{Graph, NodeId, NodeSet};
use domatic_netsim::{
    simulate, AllActive, DomaticRotation, EnergyModel, RandomRotation, SimConfig, SingleMds,
    Strategy,
};

/// The randomized rotation classes: the better of Algorithm 1's valid
/// color classes (best of a few seeds) and the Feige-style repaired
/// partition.
fn randomized_classes(g: &Graph, trials: u64) -> Vec<NodeSet> {
    let mut best: Vec<NodeSet> = Vec::new();
    for seed in 0..trials {
        let ca = uniform_coloring(g, &UniformParams { c: 3.0, seed });
        let valid: Vec<NodeSet> = ca
            .classes(g.n())
            .into_iter()
            .filter(|c| !c.is_empty() && is_dominating_set(g, c))
            .collect();
        if valid.len() > best.len() {
            best = valid;
        }
        let repaired = feige_partition(
            g,
            &FeigeParams {
                c: 3.0,
                max_sweeps: 40,
                seed,
            },
        );
        if repaired.classes.len() > best.len() {
            best = repaired.classes;
        }
    }
    best
}

/// Fraction of (class, member) pairs where crashing that one member leaves
/// some other node uncovered — the single-crash vulnerability of a
/// rotation schedule at coverage level 1.
fn single_crash_vulnerability(g: &Graph, classes: &[NodeSet]) -> f64 {
    let mut vulnerable = 0u64;
    let mut total = 0u64;
    for class in classes {
        for f in class.iter() {
            total += 1;
            let mut without = class.clone();
            without.remove(f);
            // The crashed node is gone: everyone else must still be covered.
            let broken = (0..g.n() as NodeId)
                .filter(|&v| v != f)
                .any(|v| dominator_count(g, &without, v) < 1);
            if broken {
                vulnerable += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        vulnerable as f64 / total as f64
    }
}

/// Merges consecutive classes in groups of `k` (Algorithm 3, phase 2).
fn merge_classes(classes: &[NodeSet], k: usize, n: usize) -> Vec<NodeSet> {
    classes
        .chunks(k)
        .filter(|ch| ch.len() == k)
        .map(|ch| {
            let mut m = NodeSet::new(n);
            for c in ch {
                m.union_with(c);
            }
            m
        })
        .collect()
}

/// Runs E9 and returns its tables.
pub fn run() -> Vec<Table> {
    let g = Family::Gnp { avg_degree: 80.0 }.build(400, 5);
    let capacity = 25.0f64;
    let energies = vec![capacity; g.n()];
    let cfg = SimConfig {
        model: EnergyModel::standard(),
        k: 1,
        max_slots: 100_000,
        switch_cost: 0.0,
    };

    let mut t = Table::new(
        format!(
            "E9a / network lifetime simulation — gnp(400, d̄=80), battery {capacity} units, active:sleep = 100:1"
        ),
        &["strategy", "lifetime (slots)", "delivered readings", "mean awake", "energy spent"],
    );
    let rand_classes = randomized_classes(&g, 5);
    let greedy_classes = greedy_domatic_partition(&g);
    let n_rand = rand_classes.len();
    let n_greedy = greedy_classes.len();
    let mut strategies: Vec<(String, Box<dyn Strategy>)> = vec![
        ("all-active".into(), Box::new(AllActive)),
        (
            "single-mds(static)".into(),
            Box::new(SingleMds::static_once()),
        ),
        ("single-mds(adaptive)".into(), Box::new(SingleMds::new())),
        ("random-rotation".into(), Box::new(RandomRotation::new(9))),
        (
            format!("domatic-randomized ({n_rand} classes)"),
            Box::new(DomaticRotation::new(rand_classes.clone(), 1)),
        ),
        (
            format!("domatic-greedy ({n_greedy} classes)"),
            Box::new(DomaticRotation::new(greedy_classes.clone(), 1)),
        ),
    ];
    for (name, s) in strategies.iter_mut() {
        let res = simulate(&g, &energies, s.as_mut(), &cfg, None);
        t.row(vec![
            name.clone(),
            res.lifetime.to_string(),
            res.delivered.to_string(),
            f2(res.mean_active),
            f2(res.energy_spent),
        ]);
    }
    t.note("one dominating set — even the best — dies with its batteries: static MDS lasts exactly one battery, like all-active");
    t.note("every rotation multiplies lifetime by ≈ its number of disjoint dominating sets");
    t.note("greedy finds more/smaller classes on benign graphs; the randomized partition is the one with a worst-case guarantee (see E6b)");

    // E9b: single-crash vulnerability, 1-dominating vs 2-merged classes.
    let mut ft = Table::new(
        "E9b / fault tolerance — probability a single crash in the active set breaks coverage",
        &[
            "schedule",
            "classes",
            "mean class size",
            "crash-vulnerability",
        ],
    );
    let mean_size = |cs: &[NodeSet]| {
        if cs.is_empty() {
            0.0
        } else {
            cs.iter().map(|c| c.len()).sum::<usize>() as f64 / cs.len() as f64
        }
    };
    let merged2 = merge_classes(&greedy_classes, 2, g.n());
    let rows: Vec<(&str, &[NodeSet])> = vec![
        ("greedy classes (k=1)", &greedy_classes),
        ("randomized classes (k=1)", &rand_classes),
        ("2-merged greedy classes (k=2)", &merged2),
    ];
    for (name, cs) in rows {
        ft.row(vec![
            name.to_string(),
            cs.len().to_string(),
            f2(mean_size(cs)),
            f3(single_crash_vulnerability(&g, cs)),
        ]);
    }
    ft.note("merging k=2 consecutive classes (Algorithm 3) makes the vulnerability exactly 0: every node keeps a second dominator");
    ft.note("the price is half as many classes — Lemma 6.1's 1/k lifetime factor");
    vec![t, ft]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotations_beat_static_clusterings() {
        let g = Family::Gnp { avg_degree: 80.0 }.build(400, 5);
        let energies = vec![25.0; g.n()];
        let cfg = SimConfig {
            model: EnergyModel::standard(),
            k: 1,
            max_slots: 100_000,
            switch_cost: 0.0,
        };
        let classes = randomized_classes(&g, 5);
        assert!(
            classes.len() >= 2,
            "need a real partition, got {}",
            classes.len()
        );
        let all = simulate(&g, &energies, &mut AllActive, &cfg, None);
        let mds = simulate(&g, &energies, &mut SingleMds::static_once(), &cfg, None);
        let dom = simulate(
            &g,
            &energies,
            &mut DomaticRotation::new(classes, 1),
            &cfg,
            None,
        );
        // The strawman insight: static MDS does NOT outlive all-active.
        assert_eq!(mds.lifetime, all.lifetime);
        assert!(
            dom.lifetime > all.lifetime,
            "domatic {} vs all {}",
            dom.lifetime,
            all.lifetime
        );
        assert!(dom.mean_active < all.mean_active);
    }

    #[test]
    fn merged_classes_survive_any_single_crash() {
        let g = Family::Gnp { avg_degree: 80.0 }.build(400, 5);
        let greedy = greedy_domatic_partition(&g);
        assert!(single_crash_vulnerability(&g, &greedy) > 0.0);
        let merged = merge_classes(&greedy, 2, g.n());
        assert!(!merged.is_empty());
        assert_eq!(single_crash_vulnerability(&g, &merged), 0.0);
    }
}
