//! E20 — extension: the solver portfolio — paper algorithms vs local
//! search vs the exact LP optimum across the generator zoo.
//!
//! The paper's algorithms (uniform / general) carry O(log n)
//! approximation guarantees but leave constant factors on the table; the
//! greedy baseline is deterministic but myopic. The anytime local-search
//! solvers (`tabu`, `sa`) start from the greedy schedule and refine each
//! peeling round's dominating set under an explicit iteration budget, and
//! `portfolio` races every registry member and keeps the longest
//! schedule. This experiment measures where each solver lands on the
//! quality ladder: on instances small enough for the exact LP
//! (minimal-dominating-set enumeration), the optimum bounds every column
//! from above; on larger instances the analytic upper bound stands in.
//!
//! The structural contract — tabu/sa seed their search with the greedy
//! schedule and only ever replace it with strict improvements, and
//! portfolio races greedy among its members — means no anytime column
//! may ever fall below `greedy`. The test pins that on every row.

use crate::experiments::table::Table;
use crate::experiments::workloads::{random_batteries, Family};
use domatic_core::solver::{make_solver, SolverConfig};
use domatic_lp::lp_optimal_lifetime;
use domatic_schedule::Batteries;

/// Solver columns, in presentation order. `uniform` is skipped on
/// non-uniform rows (it rejects them by contract).
const SOLVERS: &[&str] = &["greedy", "uniform", "general", "tabu", "sa", "portfolio"];

/// One measured row: per-solver lifetimes plus the LP optimum when the
/// instance is small enough to enumerate.
pub struct Row {
    /// Family label for the table.
    pub family: String,
    /// Node count.
    pub n: usize,
    /// Battery description (`b=3` or `b∈1..=4`).
    pub batteries_label: String,
    /// `(solver name, lifetime)`; `None` lifetime = solver not applicable.
    pub lifetimes: Vec<(&'static str, Option<u64>)>,
    /// Exact optimum where the LP completed.
    pub lp_opt: Option<f64>,
}

/// The generator zoo at experiment scale, `(family, n, uniform_b)`.
/// `uniform_b == None` rows draw non-uniform batteries.
fn zoo() -> Vec<(Family, usize, Option<u64>)> {
    vec![
        // Small enough for the exact LP column (minimal-DS enumeration).
        (Family::Gnp { avg_degree: 5.0 }, 12, Some(2)),
        (Family::Gnp { avg_degree: 5.0 }, 14, None),
        (Family::Rgg { avg_degree: 6.0 }, 14, Some(3)),
        // Experiment scale: the LP is infeasible, the analytic bound and
        // the greedy floor frame the comparison instead.
        (Family::Gnp { avg_degree: 20.0 }, 150, Some(3)),
        (Family::Gnp { avg_degree: 20.0 }, 150, None),
        (Family::Rgg { avg_degree: 15.0 }, 150, Some(3)),
        (Family::Torus8, 144, Some(3)),
        (Family::ScaleFree { m: 4 }, 150, None),
    ]
}

/// Runs every solver on every zoo row. Shared by `run()` and the tests.
pub fn measure() -> Vec<Row> {
    let cfg = SolverConfig::new().seed(11).trials(8);
    zoo()
        .into_iter()
        .map(|(family, n, uniform_b)| {
            let g = family.build(n, 7 + n as u64);
            let (batteries, batteries_label) = match uniform_b {
                Some(b) => (Batteries::uniform(g.n(), b), format!("b={b}")),
                None => (random_batteries(g.n(), 4, 40 + n as u64), "b∈1..=4".into()),
            };
            let lifetimes = SOLVERS
                .iter()
                .map(|&name| {
                    let solver = make_solver(name).expect("registry name");
                    (
                        name,
                        solver
                            .schedule(&g, &batteries, &cfg)
                            .ok()
                            .map(|s| s.lifetime()),
                    )
                })
                .collect();
            // The LP enumerates minimal dominating sets — only feasible
            // on the small rows; elsewhere it returns an error or blows
            // the node budget, and the column stays empty.
            let lp_opt = (g.n() <= 16)
                .then(|| lp_optimal_lifetime(&g, &batteries.to_f64(), 5_000_000).ok())
                .flatten()
                .map(|opt| opt.lifetime);
            Row {
                family: family.label(),
                n: g.n(),
                batteries_label,
                lifetimes,
                lp_opt,
            }
        })
        .collect()
}

/// Runs E20 and returns its tables.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E20 / solver portfolio — paper algorithms vs local search vs exact LP",
        &[
            "family",
            "n",
            "batteries",
            "greedy",
            "uniform",
            "general",
            "tabu",
            "sa",
            "portfolio",
            "lp_opt",
        ],
    );
    for row in measure() {
        let mut cells = vec![row.family, row.n.to_string(), row.batteries_label];
        for (_, lifetime) in &row.lifetimes {
            cells.push(lifetime.map_or("—".to_string(), |l| l.to_string()));
        }
        cells.push(row.lp_opt.map_or("—".to_string(), |o| format!("{o:.1}")));
        t.row(cells);
    }
    t.note("tabu/sa refine the greedy schedule under the default iteration budget; portfolio races every member and keeps the longest");
    t.note("uniform is — on non-uniform rows (it rejects them); lp_opt is — where minimal-DS enumeration is infeasible");
    t.note("structural floor: every anytime column ≥ greedy on every row; ceiling: every column ≤ lp_opt where it completed");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lifetime_of(row: &Row, name: &str) -> Option<u64> {
        row.lifetimes
            .iter()
            .find(|(s, _)| *s == name)
            .and_then(|(_, l)| *l)
    }

    /// The acceptance bar: tabu, sa, and portfolio beat or match greedy
    /// on every generator-zoo row, and nothing beats the exact optimum
    /// where the LP completed.
    #[test]
    fn anytime_solvers_never_lose_to_greedy_and_respect_the_lp() {
        let rows = measure();
        assert!(!rows.is_empty());
        let mut lp_rows = 0;
        for row in &rows {
            let greedy = lifetime_of(row, "greedy").expect("greedy always succeeds");
            for name in ["tabu", "sa", "portfolio"] {
                let l = lifetime_of(row, name)
                    .unwrap_or_else(|| panic!("{name} failed on {} n={}", row.family, row.n));
                assert!(
                    l >= greedy,
                    "{name} {l} < greedy {greedy} on {} n={} {}",
                    row.family,
                    row.n,
                    row.batteries_label
                );
            }
            if let Some(opt) = row.lp_opt {
                lp_rows += 1;
                for (name, lifetime) in &row.lifetimes {
                    if let Some(l) = lifetime {
                        assert!(
                            *l as f64 <= opt + 1e-6,
                            "{name} {l} beats the LP optimum {opt} on {} n={}",
                            row.family,
                            row.n
                        );
                    }
                }
            }
        }
        assert!(lp_rows >= 2, "the LP column must complete on small rows");
    }
}
