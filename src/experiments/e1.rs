//! E1 — Figure 1: the worked 7-node example with optimal lifetime 6.
//!
//! The paper's only quantitative figure shows a 7-node graph with uniform
//! battery `b = 2` scheduled through three dominating sets for a total
//! lifetime of 6, after which the poor node `v` cannot be covered anymore.
//! We reconstruct the instance, solve it *exactly* (fractional LP and
//! integral state-space search), and print an optimal step-by-step
//! schedule in the figure's format.

use crate::experiments::table::Table;
use domatic_graph::NodeSet;
use domatic_lp::{exact_integral_lifetime, figure1_instance, lp_optimal_lifetime};
use domatic_schedule::{compact::render, validate_schedule, Batteries, Schedule};

/// Runs E1 and returns its tables.
pub fn run() -> Vec<Table> {
    let (g, b) = figure1_instance();
    let batteries = Batteries::from_vec(b.iter().map(|&x| x as u64).collect());

    let frac =
        lp_optimal_lifetime(&g, &batteries.to_f64(), 1_000_000).expect("figure-1 instance is tiny");
    let integral = exact_integral_lifetime(&g, &b, 1_000_000).expect("tiny instance");

    // An explicit optimal integral schedule in the figure's three-phase
    // shape: two slots per dominating set.
    let d_a = NodeSet::from_iter(7, [0, 3]);
    let d_b = NodeSet::from_iter(7, [1, 4]);
    let d_c = NodeSet::from_iter(7, [2, 5, 6]);
    let witness = Schedule::from_entries([(d_a, 2), (d_b, 2), (d_c, 2)]);
    validate_schedule(&g, &batteries, &witness, 1).expect("witness schedule is valid");

    let mut t = Table::new(
        "E1 / Figure 1 — exact optimum of the worked example (n=7, b=2)",
        &["quantity", "value", "paper"],
    );
    t.row(vec![
        "nodes / edges".into(),
        format!("{} / {}", g.n(), g.m()),
        "7 / —".into(),
    ]);
    t.row(vec![
        "Lemma 4.1 bound b(δ+1)".into(),
        format!("{}", 2 * (g.min_degree().unwrap() as u64 + 1)),
        "6".into(),
    ]);
    t.row(vec![
        "LP optimum (fractional)".into(),
        format!("{:.3}", frac.lifetime),
        "6".into(),
    ]);
    t.row(vec![
        "exact integral optimum".into(),
        integral.to_string(),
        "6".into(),
    ]);
    t.row(vec![
        "witness schedule".into(),
        render(&witness),
        "3 sets × 2 slots".into(),
    ]);
    t.note("poor node v = node 6: N⁺(6) = {0, 1, 6} holds exactly 6 units of energy");
    t.note("after slot 6 every neighbor of v has exhausted its battery — as in the figure");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reports_six_everywhere() {
        let tables = run();
        let s = tables[0].render();
        assert!(s.contains("Figure 1"));
        // All three optimum rows must say 6.
        assert!(s.contains("6.000"));
        assert!(tables[0].num_rows() == 5);
    }
}
