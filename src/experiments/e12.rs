//! E12 — extension: the general k-tolerant case (§7's "technical open
//! question").
//!
//! Our heuristic combines Algorithm 2's multi-color drawing with
//! Algorithm 3's k-merging; the yardstick is the generalized bound
//! `τ/k`. The table shows the validated lifetime tracking `τ/k` within a
//! logarithmic factor across k — empirical evidence that the combined
//! construction behaves like the two proven special cases.

use crate::experiments::table::{f2, Table};
use crate::experiments::workloads::{random_batteries, Family};
use domatic_core::general::GeneralParams;
use domatic_core::general_fault_tolerant::{
    general_fault_tolerant_schedule, general_fault_tolerant_upper_bound,
};
use domatic_schedule::{longest_valid_prefix, validate_schedule};

/// Runs E12 and returns its tables.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E12 / general k-tolerant heuristic — Algorithm 2 × k-merging vs the τ/k bound",
        &["family", "n", "k", "L_ALG", "τ/k", "bound/L_ALG"],
    );
    for (family, n) in [
        (Family::Gnp { avg_degree: 80.0 }, 300usize),
        (Family::Gnp { avg_degree: 150.0 }, 400),
    ] {
        let g = family.build(n, 29 + n as u64);
        let b = random_batteries(g.n(), 5, 61 + n as u64);
        for k in [1usize, 2, 3] {
            if g.min_degree().unwrap_or(0) < k {
                continue;
            }
            // Best of a few seeds, validated at level k.
            let mut best = 0u64;
            for seed in 0..5 {
                let run =
                    general_fault_tolerant_schedule(&g, &b, k, &GeneralParams { c: 3.0, seed });
                let p = longest_valid_prefix(&g, &b, &run.schedule, k);
                debug_assert!(validate_schedule(&g, &b, &p, k).is_ok());
                best = best.max(p.lifetime());
            }
            let bound = general_fault_tolerant_upper_bound(&g, &b, k);
            t.row(vec![
                family.label(),
                n.to_string(),
                k.to_string(),
                best.to_string(),
                bound.to_string(),
                f2(bound as f64 / best.max(1) as f64),
            ]);
        }
    }
    t.note("no approximation proof exists for this case (open problem); the bound/L_ALG column staying");
    t.note(
        "roughly flat across k is the empirical analogue of Theorem 6.2 for non-uniform batteries",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_stays_within_bound_across_k() {
        let g = Family::Gnp { avg_degree: 80.0 }.build(300, 29 + 300);
        let b = random_batteries(300, 5, 61 + 300);
        for k in [1usize, 2, 3] {
            let run =
                general_fault_tolerant_schedule(&g, &b, k, &GeneralParams { c: 3.0, seed: 1 });
            let p = longest_valid_prefix(&g, &b, &run.schedule, k);
            assert!(p.lifetime() <= general_fault_tolerant_upper_bound(&g, &b, k));
        }
    }
}
