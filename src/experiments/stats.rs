//! Tiny summary-statistics helpers for multi-seed experiment cells.

/// Summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarizes a sample; `None` if empty.
pub fn summarize(xs: &[f64]) -> Option<Summary> {
    if xs.is_empty() {
        return None;
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some(Summary {
        n,
        mean,
        std: var.sqrt(),
        min,
        max,
    })
}

impl Summary {
    /// `"12.3 ± 1.4"` formatting for table cells.
    pub fn pm(&self) -> String {
        format!("{:.1} ± {:.1}", self.mean, self.std)
    }

    /// Half-width of the normal-approximation 95% confidence interval of
    /// the mean (`1.96·σ/√n`); 0 for n ≤ 1.
    pub fn ci95(&self) -> f64 {
        if self.n <= 1 {
            0.0
        } else {
            1.96 * self.std / (self.n as f64).sqrt()
        }
    }
}

/// Runs `f(seed)` for seeds `0..trials` and summarizes.
pub fn summarize_seeds(trials: u64, f: impl Fn(u64) -> f64) -> Summary {
    let xs: Vec<f64> = (0..trials).map(f).collect();
    summarize(&xs).expect("trials >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = summarize(&[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn summary_of_known_sample() {
        // {1, 2, 3}: mean 2, sample std 1.
        let s = summarize(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.mean, 2.0);
        assert!((s.std - 1.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.ci95() - 1.96 / 3f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.pm(), "2.0 ± 1.0");
    }

    #[test]
    fn empty_and_singleton() {
        assert!(summarize(&[]).is_none());
        let s = summarize(&[5.0]).unwrap();
        assert_eq!(s.std, 0.0);
        assert_eq!(s.n, 1);
    }

    #[test]
    fn seeded_runner() {
        let s = summarize_seeds(4, |seed| seed as f64);
        assert_eq!(s.mean, 1.5);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 3.0);
    }
}
