//! E10 — ablations of the design constants DESIGN.md calls out.
//!
//! 1. The color-range constant `c`: the paper uses 3 inside
//!    `δ²⁾/(c·ln n)`. Smaller `c` means more color classes (longer raw
//!    schedule) but a higher chance that some class fails to dominate.
//!    The table shows the trade-off: validated lifetime vs class failure
//!    rate.
//! 2. Best-of-R restarts: how much lifetime the practical restart wrapper
//!    buys over a single run.

use crate::experiments::table::{f2, f3, Table};
use crate::experiments::workloads::Family;
use domatic_core::solver::{Solver, SolverConfig, UniformSolver};
use domatic_core::uniform::{uniform_coloring, uniform_schedule, UniformParams};
use domatic_graph::domination::is_dominating_set;
use domatic_schedule::{longest_valid_prefix, Batteries};

/// Runs E10 and returns its tables.
pub fn run() -> Vec<Table> {
    let g = Family::Gnp { avg_degree: 70.0 }.build(500, 77);
    let b = 3u64;
    let batteries = Batteries::uniform(g.n(), b);
    let trials = 30u64;

    let mut ablate_c = Table::new(
        "E10a / ablation of the color-range constant c (gnp(500, d̄=70), b=3, 30 seeds)",
        &[
            "c",
            "classes",
            "class-fail rate",
            "mean valid lifetime",
            "mean raw lifetime",
        ],
    );
    for c in [1.0f64, 2.0, 3.0, 4.0, 6.0] {
        let mut classes = 0u32;
        let mut fails = 0u64;
        let mut total_classes = 0u64;
        let mut valid_sum = 0u64;
        let mut raw_sum = 0u64;
        for seed in 0..trials {
            let params = UniformParams { c, seed };
            let ca = uniform_coloring(&g, &params);
            classes = ca.num_classes;
            for cls in ca.classes(g.n()) {
                total_classes += 1;
                if !is_dominating_set(&g, &cls) {
                    fails += 1;
                }
            }
            let (raw, _) = uniform_schedule(&g, b, &params);
            raw_sum += raw.lifetime();
            valid_sum += longest_valid_prefix(&g, &batteries, &raw, 1).lifetime();
        }
        ablate_c.row(vec![
            format!("{c}"),
            classes.to_string(),
            f3(fails as f64 / total_classes.max(1) as f64),
            f2(valid_sum as f64 / trials as f64),
            f2(raw_sum as f64 / trials as f64),
        ]);
    }
    ablate_c.note("small c: many classes but early failures truncate the valid prefix; large c: few, reliable classes");
    ablate_c.note("the sweet spot near the paper's c = 3 is the ablation's point");

    let mut ablate_r = Table::new(
        "E10b / ablation of best-of-R restarts (same instance, c = 1: many classes, high variance; 12 repetitions)",
        &["R", "mean valid lifetime", "min", "max"],
    );
    for r in [1u64, 4, 16, 64] {
        let reps = 12u64;
        let lifetimes: Vec<u64> = (0..reps)
            .map(|i| {
                let cfg = SolverConfig::new().seed(10_000 * i).trials(r).c(1.0);
                UniformSolver
                    .schedule(&g, &batteries, &cfg)
                    .expect("uniform batteries")
                    .lifetime()
            })
            .collect();
        let sum: u64 = lifetimes.iter().sum();
        ablate_r.row(vec![
            r.to_string(),
            f2(sum as f64 / reps as f64),
            lifetimes.iter().min().unwrap().to_string(),
            lifetimes.iter().max().unwrap().to_string(),
        ]);
    }
    ablate_r.note(
        "restarts are cheap (parallel) and recover most of the loss from an unlucky coloring",
    );
    vec![ablate_c, ablate_r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_rate_monotone_in_c_roughly() {
        // c = 1 must fail at least as often as c = 6 on the same instance.
        let g = Family::Gnp { avg_degree: 70.0 }.build(500, 77);
        let rate = |c: f64| {
            let mut fails = 0u64;
            let mut total = 0u64;
            for seed in 0..10 {
                let ca = uniform_coloring(&g, &UniformParams { c, seed });
                for cls in ca.classes(g.n()) {
                    total += 1;
                    if !is_dominating_set(&g, &cls) {
                        fails += 1;
                    }
                }
            }
            fails as f64 / total.max(1) as f64
        };
        assert!(rate(1.0) >= rate(6.0));
    }
}
