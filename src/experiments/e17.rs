//! E17 — extension: the MAC layer the paper assumes, costed.
//!
//! Algorithm 1's "one communication round" presumes a MAC layer where
//! every broadcast is heard. On a raw collision channel (slotted ALOHA,
//! unit-disk collisions), disseminating each node's degree to all its
//! neighbors — the physical realization of that one round — takes
//! `O(Δ log n)`-ish slots with tuned transmission probabilities. The
//! sweep shows the cost as density grows and the penalty for mistuned
//! probabilities (the reason §3 cites dedicated initialization protocols
//! \[13\] for the no-MAC setting).

use crate::experiments::table::{f2, Table};
use crate::experiments::workloads::Family;
use domatic_distsim::radio::{disseminate_degrees, RadioParams};

/// Runs E17 and returns its tables.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E17 / radio dissemination — slots to complete Algorithm 1's logical round over slotted ALOHA",
        &["family", "n", "Δ", "p", "slots", "slots/Δ", "collision rate"],
    );
    for (family, n) in [
        (Family::Rgg { avg_degree: 10.0 }, 300usize),
        (Family::Rgg { avg_degree: 25.0 }, 300),
        (Family::Rgg { avg_degree: 50.0 }, 300),
    ] {
        let g = family.build(n, 61 + n as u64);
        let max_deg = g.max_degree().unwrap();
        for (label, p) in [("1/(δv+1)", None), ("0.5 (mistuned)", Some(0.5))] {
            // The mistuned runs never finish; cap their budget so the
            // suite stays fast — the ">cap" marker tells the story.
            let max_slots = if p.is_some() { 20_000 } else { 200_000 };
            let run = disseminate_degrees(
                &g,
                &RadioParams {
                    p,
                    max_slots,
                    seed: 5,
                },
            );
            let status = if run.complete {
                run.slots_used.to_string()
            } else {
                format!(">{}", run.slots_used)
            };
            t.row(vec![
                family.label(),
                n.to_string(),
                max_deg.to_string(),
                label.to_string(),
                status,
                f2(run.slots_used as f64 / max_deg as f64),
                f2(run.collisions as f64 / (run.collisions + run.receptions).max(1) as f64),
            ]);
        }
    }
    t.note("tuned p ≈ 1/(d+1): completion in O(Δ·log n)-ish slots; mistuned p = 0.5 collapses under collisions at density");
    t.note(
        "this is the per-round MAC cost hidden inside every 'communication round' the paper counts",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_dissemination_completes_within_budget() {
        let g = Family::Rgg { avg_degree: 25.0 }.build(300, 61 + 300);
        let run = disseminate_degrees(
            &g,
            &RadioParams {
                p: None,
                max_slots: 200_000,
                seed: 5,
            },
        );
        assert!(run.complete);
        // And in a sane number of slots for Δ ≈ 40.
        assert!(run.slots_used < 20_000, "{}", run.slots_used);
    }
}
