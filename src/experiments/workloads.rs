//! Shared workload construction for the experiment suite.

use domatic_graph::generators::geometric::{radius_for_avg_degree, random_geometric};
use domatic_graph::generators::gnp::gnp_with_avg_degree;
use domatic_graph::generators::grid::{grid, GridKind};
use domatic_graph::generators::preferential::barabasi_albert;
use domatic_graph::Graph;
use domatic_schedule::Batteries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A topology family, parameterized only by size and seed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Family {
    /// Random geometric graph (unit disk) with target average degree.
    Rgg {
        /// Target average degree (controls the radius).
        avg_degree: f64,
    },
    /// Erdős–Rényi with target average degree.
    Gnp {
        /// Target average degree (controls `p`).
        avg_degree: f64,
    },
    /// √n × √n torus with the 8-neighborhood (degree 8 everywhere).
    Torus8,
    /// Barabási–Albert preferential attachment (heavy-tailed degrees,
    /// δ = m while Δ = Θ(√n) — separates the paper's δ- and Δ-dependences).
    ScaleFree {
        /// Edges added per new node (also the minimum degree).
        m: usize,
    },
}

impl Family {
    /// Short label for table rows.
    pub fn label(&self) -> String {
        match self {
            Family::Rgg { avg_degree } => format!("rgg(d̄={avg_degree})"),
            Family::Gnp { avg_degree } => format!("gnp(d̄={avg_degree})"),
            Family::Torus8 => "torus8".to_string(),
            Family::ScaleFree { m } => format!("ba(m={m})"),
        }
    }

    /// Builds an instance of roughly `n` nodes (the torus rounds to a
    /// square).
    pub fn build(&self, n: usize, seed: u64) -> Graph {
        match self {
            Family::Rgg { avg_degree } => {
                random_geometric(n, radius_for_avg_degree(n, *avg_degree), seed).graph
            }
            Family::Gnp { avg_degree } => gnp_with_avg_degree(n, *avg_degree, seed),
            Family::Torus8 => {
                let side = (n as f64).sqrt().round().max(3.0) as usize;
                grid(side, side, GridKind::EightConnected, true)
            }
            Family::ScaleFree { m } => barabasi_albert(n, *m, seed),
        }
    }
}

/// Uniform random batteries in `1..=hi`, deterministic per seed.
pub fn random_batteries(n: usize, hi: u64, seed: u64) -> Batteries {
    let mut rng = StdRng::seed_from_u64(seed);
    Batteries::from_vec((0..n).map(|_| rng.random_range(1..=hi)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_build_at_requested_sizes() {
        let r = Family::Rgg { avg_degree: 10.0 }.build(100, 1);
        assert_eq!(r.n(), 100);
        let g = Family::Gnp { avg_degree: 10.0 }.build(100, 1);
        assert_eq!(g.n(), 100);
        let t = Family::Torus8.build(100, 1);
        assert_eq!(t.n(), 100);
        assert_eq!(t.min_degree(), Some(8));
    }

    #[test]
    fn labels_are_distinct() {
        assert_ne!(
            Family::Rgg { avg_degree: 10.0 }.label(),
            Family::Gnp { avg_degree: 10.0 }.label()
        );
    }

    #[test]
    fn random_batteries_in_range() {
        let b = random_batteries(200, 5, 3);
        assert!(b.as_slice().iter().all(|&x| (1..=5).contains(&x)));
        assert_eq!(random_batteries(200, 5, 3), random_batteries(200, 5, 3));
    }
}
