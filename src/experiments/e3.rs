//! E3 — Lemma 4.2: every guaranteed color class is a dominating set with
//! probability 1 − o(1).
//!
//! For each size we run many independent colorings and report (a) the
//! fraction of guaranteed classes that fail to dominate and (b) the
//! fraction of runs where *any* guaranteed class fails. Both should decay
//! with n (the lemma's bound is O(ln n / n) per run).

use crate::experiments::table::{f3, Table};
use crate::experiments::workloads::Family;
use domatic_core::uniform::{uniform_coloring, UniformParams};
use domatic_graph::domination::is_dominating_set;

/// Runs E3 and returns its tables.
pub fn run() -> Vec<Table> {
    let trials = 40u64;
    let mut t = Table::new(
        format!(
            "E3 / Lemma 4.2 — probability color classes dominate ({trials} colorings per row, c=3)"
        ),
        &[
            "family",
            "n",
            "guaranteed",
            "class-fail rate",
            "run-fail rate",
        ],
    );
    for family in [
        Family::Gnp { avg_degree: 50.0 },
        Family::Gnp { avg_degree: 150.0 },
        Family::Rgg { avg_degree: 50.0 },
    ] {
        for n in [100usize, 200, 400, 800, 1600] {
            let g = family.build(n, 31 + n as u64);
            let mut class_fail = 0u64;
            let mut class_total = 0u64;
            let mut run_fail = 0u64;
            let mut guaranteed = 0;
            for seed in 0..trials {
                let ca = uniform_coloring(&g, &UniformParams { c: 3.0, seed });
                guaranteed = ca.guaranteed_classes;
                let classes = ca.classes(g.n());
                let mut any = false;
                for cls in classes.iter().take(ca.guaranteed_classes as usize) {
                    class_total += 1;
                    if !is_dominating_set(&g, cls) {
                        class_fail += 1;
                        any = true;
                    }
                }
                if any {
                    run_fail += 1;
                }
            }
            t.row(vec![
                family.label(),
                n.to_string(),
                guaranteed.to_string(),
                f3(class_fail as f64 / class_total.max(1) as f64),
                f3(run_fail as f64 / trials as f64),
            ]);
        }
    }
    t.note("Lemma 4.2: P[some guaranteed class fails] ≤ δ²·ln n/n² → both rates shrink as n grows");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_shape() {
        let tables = run();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].num_rows(), 15);
    }
}
