//! E5 — Theorem 6.2: the fault-tolerant algorithm across both regimes.
//!
//! The k-tolerant lifetime should scale like `1/k` (Lemma 6.1's bound
//! divides by `k`), and the algorithm must remain an O(log n)
//! approximation in *both* regimes: `δ/ln n ≥ 3k` (merging works) and
//! `δ/ln n < 3k` (the everyone-on phase carries the guarantee).

use crate::experiments::table::{f2, Table};
use crate::experiments::workloads::Family;
use domatic_core::bounds::{fault_tolerant_upper_bound, ln_n};
use domatic_core::solver::{FaultTolerantSolver, Solver, SolverConfig};
use domatic_schedule::Batteries;

/// Runs E5 and returns its tables.
pub fn run() -> Vec<Table> {
    let b = 6u64;
    let trials = 5u64;
    let mut t = Table::new(
        format!(
            "E5 / Theorem 6.2 — k-tolerant lifetime vs Lemma 6.1 bound (b={b}, best of {trials})"
        ),
        &[
            "family",
            "n",
            "δ",
            "k",
            "regime",
            "L_ALG",
            "b(δ+1)/k",
            "bound/L_ALG",
        ],
    );
    // Dense family (merging regime for small k) and the torus (low degree:
    // everyone-on regime for k ≥ 1 already, since 8/ln n < 3k).
    for family in [
        Family::Gnp { avg_degree: 60.0 },
        Family::Gnp { avg_degree: 150.0 },
        Family::Torus8,
    ] {
        for n in [400usize] {
            let g = family.build(n, 23 + n as u64);
            let delta = g.min_degree().unwrap();
            for k in [1usize, 2, 3, 5] {
                if delta < k {
                    continue;
                }
                let regime = if (delta as f64) / ln_n(g.n()) >= 3.0 * k as f64 {
                    "merge"
                } else {
                    "everyone-on"
                };
                let cfg = SolverConfig::new().seed(40 + k as u64).trials(trials).k(k);
                let sched = FaultTolerantSolver
                    .schedule(&g, &Batteries::uniform(g.n(), b), &cfg)
                    .expect("uniform batteries");
                let l_alg = sched.lifetime();
                let bound = fault_tolerant_upper_bound(&g, b, k);
                t.row(vec![
                    family.label(),
                    g.n().to_string(),
                    delta.to_string(),
                    k.to_string(),
                    regime.into(),
                    l_alg.to_string(),
                    bound.to_string(),
                    f2(bound as f64 / l_alg.max(1) as f64),
                ]);
            }
        }
    }
    t.note("lifetime always ≥ b/2 (everyone-on phase), so bound/L_ALG ≤ 2(δ+1)/k even in the sparse regime");
    t.note("within one family, the bound column scaling like 1/k is Lemma 6.1's prediction");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_bound_and_floor() {
        let g = Family::Gnp { avg_degree: 60.0 }.build(400, 23 + 400);
        let b = 6u64;
        for k in [1usize, 2, 3] {
            let cfg = SolverConfig::new().trials(2).k(k);
            let s = FaultTolerantSolver
                .schedule(&g, &Batteries::uniform(g.n(), b), &cfg)
                .unwrap();
            assert!(s.lifetime() >= b / 2, "k={k}");
            assert!(
                s.lifetime() <= fault_tolerant_upper_bound(&g, b, k),
                "k={k}"
            );
        }
    }
}
