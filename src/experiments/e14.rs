//! E14 — extension: delivery cost of data gathering (§1/§2's motivating
//! application, quantified).
//!
//! A dominating-set clustering isn't just about coverage: sleeping nodes
//! hand their readings to an awake dominator and aggregates flow to a sink
//! over a BFS tree. The table compares activation policies by the radio
//! work they cause — hop-transmissions per delivered reading — alongside
//! the lifetime they achieve. Small awake sets save idle energy but pay
//! more hand-off hops; the interesting quantity is the total.

use crate::experiments::table::{f2, Table};
use crate::experiments::workloads::Family;
use domatic_core::greedy::greedy_domatic_partition;
use domatic_graph::NodeSet;
use domatic_netsim::datagather::{slot_delivery_cost, AggregationTree};
use domatic_netsim::{
    simulate, AllActive, DomaticRotation, EnergyModel, SimConfig, SingleMds, Strategy,
};

/// Runs E14 and returns its tables.
pub fn run() -> Vec<Table> {
    let g = Family::Rgg { avg_degree: 40.0 }.build(300, 21);
    let sink = 0u32;
    let tree = AggregationTree::build(&g, sink);
    let capacity = 20.0;
    let energies = vec![capacity; g.n()];
    let cfg = SimConfig {
        model: EnergyModel::standard(),
        k: 1,
        max_slots: 100_000,
        switch_cost: 0.0,
    };

    let mut t = Table::new(
        "E14 / data-gathering delivery cost — rgg(300, d̄=40), BFS aggregation tree to node 0",
        &[
            "strategy",
            "lifetime",
            "awake/slot",
            "hops/slot",
            "hops per reading",
        ],
    );
    let classes = greedy_domatic_partition(&g);
    let mut strategies: Vec<(String, Box<dyn Strategy>)> = vec![
        ("all-active".into(), Box::new(AllActive)),
        ("single-mds(adaptive)".into(), Box::new(SingleMds::new())),
        (
            format!("domatic-greedy ({} classes)", classes.len()),
            Box::new(DomaticRotation::new(classes, 1)),
        ),
    ];
    for (name, s) in strategies.iter_mut() {
        // First, measure the steady-state delivery cost of the strategy's
        // very first awake set (full batteries — representative slot).
        let awake = s
            .next_active(&g, &energies, &cfg.model, 0)
            .expect("fresh batteries must yield a set");
        let alive = NodeSet::full(g.n());
        let cost = slot_delivery_cost(&g, &tree, &awake, &alive);
        assert_eq!(cost.stranded, 0, "{name}: awake set must dominate");
        // Then the lifetime with a fresh strategy state is measured by the
        // simulator in E9; here we re-run it to pair cost with lifetime.
        let res = simulate(&g, &energies, s.as_mut(), &cfg, None);
        t.row(vec![
            name.clone(),
            res.lifetime.to_string(),
            f2(res.mean_active),
            cost.hop_transmissions.to_string(),
            f2(cost.hop_transmissions as f64 / cost.collected.max(1) as f64),
        ]);
    }
    t.note("hops/slot is the radio work to deliver one slot's readings with perfect aggregation");
    t.note("clustering wins twice: sleepers pay 1 hand-off hop and only the few dominators climb the tree,");
    t.note("so the dominating-set strategies deliver each reading in ~1 hop vs ~4 for all-active — AND live ~9× longer");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominating_strategies_deliver_everything_on_fresh_batteries() {
        let g = Family::Rgg { avg_degree: 40.0 }.build(300, 21);
        let tree = AggregationTree::build(&g, 0);
        assert!(tree.spans());
        let energies = vec![20.0; g.n()];
        let model = EnergyModel::standard();
        let mut s = SingleMds::new();
        let awake = s.next_active(&g, &energies, &model, 0).unwrap();
        let cost = slot_delivery_cost(&g, &tree, &awake, &NodeSet::full(g.n()));
        assert_eq!(cost.stranded, 0);
        assert_eq!(cost.collected, 300);
        assert!(cost.hop_transmissions > 0);
    }
}
