//! E2 — Theorem 4.3: the uniform algorithm is an O(log n) approximation.
//!
//! Two tables:
//! 1. a size sweep across topology families reporting the achieved
//!    (validated) lifetime against Lemma 4.1's bound `b(δ+1)` — the ratio
//!    should grow no faster than `ln n` (the theorem), and stay near
//!    `3 ln n` on degree-homogeneous graphs;
//! 2. exact approximation ratios against the LP optimum on instances small
//!    enough to enumerate.

use crate::experiments::stats::summarize_seeds;
use crate::experiments::table::{f2, Table};
use crate::experiments::workloads::Family;
use domatic_core::bounds::{ln_n, uniform_upper_bound};
use domatic_core::solver::{Solver, SolverConfig, UniformSolver};
use domatic_core::uniform::{uniform_schedule, UniformParams};
use domatic_graph::generators::regular::{cycle, path, star};
use domatic_graph::Graph;
use domatic_lp::lp_optimal_lifetime;
use domatic_schedule::{longest_valid_prefix, Batteries};

/// Runs E2 and returns its tables.
pub fn run() -> Vec<Table> {
    let b = 3u64;
    let trials = 5u64;

    let mut sweep = Table::new(
        format!("E2a / Theorem 4.3 — uniform algorithm vs Lemma 4.1 bound (b={b}, {trials} seeds)"),
        &[
            "family",
            "n",
            "δ",
            "Δ",
            "L_ALG (mean ± std)",
            "best",
            "b(δ+1)",
            "bound/best",
            "ln n",
        ],
    );
    // Sparse regime (δ < 3 ln n: one color class, the degenerate case the
    // proof of Theorem 4.3 handles via Lemma 4.1 directly) and the dense
    // regime (δ ≫ ln n: many classes, where the construction shines).
    let families = [
        Family::Rgg { avg_degree: 40.0 },
        Family::Gnp { avg_degree: 40.0 },
        Family::Gnp { avg_degree: 150.0 },
        Family::Torus8,
        Family::ScaleFree { m: 4 },
    ];
    for family in families {
        for n in [100usize, 200, 400, 800, 1600] {
            let g = family.build(n, 7 + n as u64);
            let batteries = Batteries::uniform(g.n(), b);
            let stats = summarize_seeds(trials, |seed| {
                let (raw, _) = uniform_schedule(
                    &g,
                    b,
                    &UniformParams {
                        c: 3.0,
                        seed: 1000 + n as u64 + seed,
                    },
                );
                longest_valid_prefix(&g, &batteries, &raw, 1).lifetime() as f64
            });
            let bound = uniform_upper_bound(&g, b);
            sweep.row(vec![
                family.label(),
                g.n().to_string(),
                g.min_degree().unwrap().to_string(),
                g.max_degree().unwrap().to_string(),
                stats.pm(),
                (stats.max as u64).to_string(),
                bound.to_string(),
                f2(bound as f64 / stats.max.max(1.0)),
                f2(ln_n(g.n())),
            ]);
        }
    }
    sweep.note("Theorem 4.3 predicts bound/L_ALG = O(ln n); the paper's constant is ≈ 3·ln n on degree-regular graphs");
    sweep.note("on rgg/gnp the bound pins L_OPT to the sparsest neighborhood, so small ratios mean the schedule nearly exhausts it");

    let mut exact = Table::new(
        "E2b / exact ratios — uniform algorithm vs LP optimum (small instances)",
        &["instance", "n", "L_ALG", "L_OPT (LP)", "ratio"],
    );
    let smalls: Vec<(String, Graph)> = vec![
        ("path(8)".into(), path(8)),
        ("cycle(9)".into(), cycle(9)),
        ("cycle(12)".into(), cycle(12)),
        ("star(8)".into(), star(8)),
        (
            "rgg(16)".into(),
            Family::Rgg { avg_degree: 6.0 }.build(16, 3),
        ),
        (
            "gnp(14)".into(),
            Family::Gnp { avg_degree: 5.0 }.build(14, 5),
        ),
    ];
    for (name, g) in smalls {
        let cfg = SolverConfig::new().seed(99).trials(20);
        let sched = UniformSolver
            .schedule(&g, &Batteries::uniform(g.n(), b), &cfg)
            .expect("uniform batteries");
        let l_alg = sched.lifetime();
        let opt = lp_optimal_lifetime(&g, &vec![b as f64; g.n()], 2_000_000)
            .expect("small instance enumerates")
            .lifetime;
        exact.row(vec![
            name,
            g.n().to_string(),
            l_alg.to_string(),
            f2(opt),
            f2(opt / l_alg.max(1) as f64),
        ]);
    }
    exact.note(
        "sparse instances collapse to one color class (δ < 3 ln n): L_ALG = b, optimum ≤ b·(δ+1)",
    );

    vec![sweep, exact]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_rows_and_sanity() {
        let tables = run();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].num_rows(), 25);
        assert_eq!(tables[1].num_rows(), 6);
        // The rendered ratios must all be ≥ 1 (bound is an upper bound);
        // verified structurally by re-running one cell.
        let g = Family::Torus8.build(400, 7 + 400);
        let cfg = SolverConfig::new().seed(1400).trials(5);
        let s = UniformSolver
            .schedule(&g, &Batteries::uniform(g.n(), 3), &cfg)
            .unwrap();
        assert!(s.lifetime() <= uniform_upper_bound(&g, 3));
        assert!(s.lifetime() >= 3); // at least one class × b
    }
}
