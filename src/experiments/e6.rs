//! E6 — the greedy baseline and its Ω(√n) collapse.
//!
//! On benign families the greedy domatic partition is competitive (often
//! better than one randomized run). On the Fujita-style family `B(m)` it
//! finds O(1) disjoint dominating sets while the optimum is `m + 1 = Θ(√n)`
//! — the separation Feige et al. / Fujita proved and the reason the paper
//! needs the randomized construction.

use crate::experiments::table::{f2, Table};
use crate::experiments::workloads::Family;
use domatic_core::greedy::greedy_domatic_partition;
use domatic_core::uniform::{uniform_coloring, UniformParams};
use domatic_graph::domination::is_dominating_set;
use domatic_graph::generators::fujita::{fujita_bad_instance, fujita_optimal_partition_size};
use domatic_graph::Graph;

/// Count of dominating classes among a coloring's guaranteed prefix, best
/// over `trials` seeds (the randomized competitor's partition size).
fn randomized_partition_size(g: &Graph, trials: u64) -> usize {
    let mut best = 0;
    for seed in 0..trials {
        let ca = uniform_coloring(g, &UniformParams { c: 3.0, seed });
        let valid = ca
            .classes(g.n())
            .iter()
            .take(ca.guaranteed_classes as usize)
            .filter(|c| is_dominating_set(g, c))
            .count();
        best = best.max(valid);
    }
    best
}

/// Runs E6 and returns its tables.
pub fn run() -> Vec<Table> {
    let mut benign = Table::new(
        "E6a / greedy vs randomized domatic partition on benign families",
        &[
            "family",
            "n",
            "δ+1 (UB)",
            "greedy",
            "randomized (best of 10)",
        ],
    );
    for family in [
        Family::Gnp { avg_degree: 50.0 },
        Family::Gnp { avg_degree: 150.0 },
        Family::Rgg { avg_degree: 50.0 },
    ] {
        for n in [200usize, 400] {
            let g = family.build(n, 3 + n as u64);
            benign.row(vec![
                family.label(),
                n.to_string(),
                (g.min_degree().unwrap() + 1).to_string(),
                greedy_domatic_partition(&g).len().to_string(),
                randomized_partition_size(&g, 10).to_string(),
            ]);
        }
    }
    benign.note("greedy is strong on benign graphs — the point of E6b is that it has no worst-case guarantee");

    let mut adversarial = Table::new(
        "E6b / the Fujita-style family B(m): greedy collapses to O(1)",
        &[
            "m",
            "n = 1+m+m²",
            "optimal (m+1)",
            "greedy",
            "opt/greedy",
            "√n",
        ],
    );
    for m in [4usize, 6, 8, 12, 16] {
        let g = fujita_bad_instance(m);
        let greedy = greedy_domatic_partition(&g).len();
        let opt = fujita_optimal_partition_size(m);
        adversarial.row(vec![
            m.to_string(),
            g.n().to_string(),
            opt.to_string(),
            greedy.to_string(),
            f2(opt as f64 / greedy.max(1) as f64),
            f2((g.n() as f64).sqrt()),
        ]);
    }
    adversarial
        .note("opt/greedy grows like √n — the Ω(√n) separation of Fujita [6] / Feige et al. [5]");
    vec![benign, adversarial]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separation_grows() {
        let g4 = fujita_bad_instance(4);
        let g12 = fujita_bad_instance(12);
        let r4 = fujita_optimal_partition_size(4) as f64
            / greedy_domatic_partition(&g4).len().max(1) as f64;
        let r12 = fujita_optimal_partition_size(12) as f64
            / greedy_domatic_partition(&g12).len().max(1) as f64;
        assert!(r12 > r4, "{r12} <= {r4}");
        assert!(r12 >= 4.0);
    }

    #[test]
    fn randomized_survives_fujita_better_than_nothing() {
        // B(m) has δ = m (node u), so the randomized guarantee is
        // max(1, m/(3 ln n)) classes — modest but not adversarially 2.
        let g = fujita_bad_instance(8);
        assert!(randomized_partition_size(&g, 5) >= 1);
    }
}
