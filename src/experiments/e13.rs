//! E13 — extension: sensitivity to the network-size estimate (§7: "getting
//! rid of the assumption that n is known is another open and challenging
//! problem").
//!
//! Algorithm 1's color range divides by `ln ñ`. The sweep runs the
//! algorithm with ñ = f·n for misestimation factors f and reports the
//! class failure rate and the validated lifetime: overestimates are safe
//! but conservative, underestimates are aggressive and increasingly
//! unreliable — quantifying exactly why the assumption matters.

use crate::experiments::table::{f2, f3, Table};
use crate::experiments::workloads::Family;
use domatic_core::partition::schedule_fixed_duration;
use domatic_core::uniform::{uniform_coloring_with_estimate, UniformParams};
use domatic_graph::domination::is_dominating_set;
use domatic_schedule::{longest_valid_prefix, Batteries};

/// Runs E13 and returns its tables.
pub fn run() -> Vec<Table> {
    let g = Family::Gnp { avg_degree: 120.0 }.build(400, 47);
    let b = 2u64;
    let batteries = Batteries::uniform(g.n(), b);
    let trials = 20u64;
    let mut t = Table::new(
        "E13 / unknown n — sensitivity of Algorithm 1 to the size estimate ñ = f·n (gnp(400, d̄=120), 20 seeds)",
        &[
            "f = ñ/n",
            "classes",
            "guaranteed",
            "guaranteed-fail rate",
            "all-class fail rate",
            "mean valid lifetime",
        ],
    );
    for f in [0.05f64, 0.25, 0.5, 1.0, 2.0, 10.0, 100.0] {
        let n_est = ((g.n() as f64 * f).round() as usize).max(2);
        let mut classes = 0u32;
        let mut guaranteed = 0u32;
        let mut gfails = 0u64;
        let mut gtotal = 0u64;
        let mut fails = 0u64;
        let mut total = 0u64;
        let mut valid_sum = 0u64;
        for seed in 0..trials {
            let ca = uniform_coloring_with_estimate(&g, n_est, &UniformParams { c: 3.0, seed });
            classes = ca.num_classes;
            guaranteed = ca.guaranteed_classes;
            for (i, cls) in ca.classes(g.n()).iter().enumerate() {
                total += 1;
                let fail = !is_dominating_set(&g, cls);
                if fail {
                    fails += 1;
                }
                if (i as u32) < ca.guaranteed_classes {
                    gtotal += 1;
                    if fail {
                        gfails += 1;
                    }
                }
            }
            let raw = schedule_fixed_duration(&ca.classes(g.n()), b);
            valid_sum += longest_valid_prefix(&g, &batteries, &raw, 1).lifetime();
        }
        t.row(vec![
            format!("{f}"),
            classes.to_string(),
            guaranteed.to_string(),
            f3(gfails as f64 / gtotal.max(1) as f64),
            f3(fails as f64 / total.max(1) as f64),
            f2(valid_sum as f64 / trials as f64),
        ]);
    }
    t.note("Lemma 4.2 certifies the GUARANTEED prefix; overestimating n shrinks that prefix but keeps it reliable");
    t.note("underestimating inflates the 'certified' prefix beyond what the true n justifies — the w.h.p. proof no longer covers it (on this dense, concentrated instance it happens to survive; c = 3 has slack)");
    t.note("the all-class rate includes the uncertified tail (chosen only by high-δ²⁾ nodes) and is noisy by design");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overestimates_shrink_ranges() {
        let g = Family::Gnp { avg_degree: 120.0 }.build(400, 47);
        let p = UniformParams { c: 3.0, seed: 0 };
        let small = uniform_coloring_with_estimate(&g, 40, &p);
        let exact = uniform_coloring_with_estimate(&g, 400, &p);
        let big = uniform_coloring_with_estimate(&g, 40_000, &p);
        assert!(small.guaranteed_classes >= exact.guaranteed_classes);
        assert!(exact.guaranteed_classes >= big.guaranteed_classes);
    }
}
