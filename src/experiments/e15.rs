//! E15 — ablation: dwell time vs switching cost.
//!
//! The paper's schedules activate each color class for its full battery
//! `b` in one contiguous block (`S_v(b·c_v … b(c_v+1)) := 1`). Why not
//! interleave slot-by-slot? Because waking up costs something: handover
//! beacons, neighbor re-discovery. This ablation charges an explicit
//! per-wakeup energy tax and sweeps the rotation dwell, showing that the
//! paper's block shape is the right default once switching is not free.

use crate::experiments::table::{f2, Table};
use crate::experiments::workloads::Family;
use domatic_core::greedy::greedy_domatic_partition;
use domatic_netsim::{simulate, DomaticRotation, EnergyModel, SimConfig};

/// Runs E15 and returns its tables.
pub fn run() -> Vec<Table> {
    let g = Family::Gnp { avg_degree: 80.0 }.build(400, 33);
    let capacity = 24.0f64;
    let energies = vec![capacity; g.n()];
    let classes = greedy_domatic_partition(&g);
    let n_classes = classes.len();

    let mut t = Table::new(
        format!(
            "E15 / dwell vs switching cost — gnp(400, d̄=80), {n_classes} greedy classes, battery {capacity}"
        ),
        &["switch cost", "dwell", "lifetime", "wakeups", "wakeups/slot"],
    );
    for switch_cost in [0.0f64, 0.25, 1.0] {
        for dwell in [1u64, 4, 24] {
            let cfg = SimConfig {
                model: EnergyModel::standard(),
                k: 1,
                max_slots: 100_000,
                switch_cost,
            };
            let res = simulate(
                &g,
                &energies,
                &mut DomaticRotation::new(classes.clone(), dwell),
                &cfg,
                None,
            );
            t.row(vec![
                format!("{switch_cost}"),
                dwell.to_string(),
                res.lifetime.to_string(),
                res.wakeups.to_string(),
                f2(res.wakeups as f64 / res.lifetime.max(1) as f64),
            ]);
        }
    }
    t.note("with free switching the dwell barely matters; with a real wakeup tax, block dwell (= b, the paper's shape) wins");
    t.note("dwell 24 = the full battery: each class wakes exactly once, the minimum possible handover volume");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_dwell_beats_fine_rotation_under_switch_tax() {
        let g = Family::Gnp { avg_degree: 80.0 }.build(400, 33);
        let energies = vec![24.0; g.n()];
        let classes = greedy_domatic_partition(&g);
        let cfg = SimConfig {
            model: EnergyModel::standard(),
            k: 1,
            max_slots: 100_000,
            switch_cost: 1.0,
        };
        let fine = simulate(
            &g,
            &energies,
            &mut DomaticRotation::new(classes.clone(), 1),
            &cfg,
            None,
        );
        let block = simulate(
            &g,
            &energies,
            &mut DomaticRotation::new(classes, 24),
            &cfg,
            None,
        );
        assert!(
            block.lifetime > fine.lifetime,
            "block {} vs fine {}",
            block.lifetime,
            fine.lifetime
        );
        assert!(block.wakeups < fine.wakeups);
    }
}
