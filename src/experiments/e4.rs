//! E4 — Theorem 5.3: the general algorithm with non-uniform batteries.
//!
//! Batteries are drawn uniformly from `{1..B}`. We report the validated
//! lifetime against Lemma 5.1's energy-coverage bound `τ`, with the greedy
//! general scheduler as a centralized baseline, plus exact LP ratios on
//! small instances.

use crate::experiments::table::{f2, Table};
use crate::experiments::workloads::{random_batteries, Family};
use domatic_core::bounds::general_upper_bound;
use domatic_core::greedy::greedy_general_schedule;
use domatic_core::solver::{GeneralSolver, Solver, SolverConfig};
use domatic_lp::lp_optimal_lifetime;

/// Runs E4 and returns its tables.
pub fn run() -> Vec<Table> {
    let bmax = 5u64;
    let trials = 5u64;
    let mut sweep = Table::new(
        format!(
            "E4a / Theorem 5.3 — general algorithm, b_v ~ U{{1..{bmax}}} (best of {trials} seeds)"
        ),
        &[
            "family",
            "n",
            "τ (Lem 5.1)",
            "L_ALG",
            "L_greedy",
            "τ/L_ALG",
            "ln(b_max·n)",
        ],
    );
    for family in [
        Family::Rgg { avg_degree: 40.0 },
        Family::Gnp { avg_degree: 40.0 },
        Family::Gnp { avg_degree: 150.0 },
    ] {
        for n in [100usize, 200, 400, 800] {
            let g = family.build(n, 17 + n as u64);
            let b = random_batteries(g.n(), bmax, 53 + n as u64);
            let cfg = SolverConfig::new().seed(2000 + n as u64).trials(trials);
            let sched = GeneralSolver.schedule(&g, &b, &cfg).expect("sizes match");
            let l_alg = sched.lifetime();
            let greedy = greedy_general_schedule(&g, &b).lifetime();
            let tau = general_upper_bound(&g, &b);
            sweep.row(vec![
                family.label(),
                n.to_string(),
                tau.to_string(),
                l_alg.to_string(),
                greedy.to_string(),
                f2(tau as f64 / l_alg.max(1) as f64),
                f2(((bmax * g.n() as u64) as f64).ln()),
            ]);
        }
    }
    sweep.note(
        "Theorem 5.3: τ/L_ALG = O(log(b_max·n)); greedy is the centralized baseline (no guarantee)",
    );

    let mut exact = Table::new(
        "E4b / exact ratios — general algorithm vs LP optimum (small instances)",
        &[
            "instance",
            "n",
            "L_ALG",
            "L_greedy",
            "L_OPT (LP)",
            "LP/L_ALG",
        ],
    );
    for (name, g, bseed) in [
        (
            "rgg(14)",
            Family::Rgg { avg_degree: 6.0 }.build(14, 9),
            1u64,
        ),
        ("gnp(12)", Family::Gnp { avg_degree: 5.0 }.build(12, 4), 2),
        ("torus(16)", Family::Torus8.build(16, 0), 3),
    ] {
        let b = random_batteries(g.n(), 4, bseed);
        let cfg = SolverConfig::new().seed(7).trials(20);
        let sched = GeneralSolver.schedule(&g, &b, &cfg).expect("sizes match");
        let greedy = greedy_general_schedule(&g, &b).lifetime();
        let opt = lp_optimal_lifetime(&g, &b.to_f64(), 2_000_000)
            .expect("small instance enumerates")
            .lifetime;
        exact.row(vec![
            name.to_string(),
            g.n().to_string(),
            sched.lifetime().to_string(),
            greedy.to_string(),
            f2(opt),
            f2(opt / sched.lifetime().max(1) as f64),
        ]);
    }
    vec![sweep, exact]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_shape_and_bound_respected() {
        // Re-run a single cell and check the invariant the table reports.
        let g = Family::Gnp { avg_degree: 40.0 }.build(200, 17 + 200);
        let b = random_batteries(200, 5, 53 + 200);
        let s = GeneralSolver
            .schedule(&g, &b, &SolverConfig::new().trials(3))
            .unwrap();
        assert!(s.lifetime() <= general_upper_bound(&g, &b));
        assert!(s.lifetime() >= 1);
    }
}
