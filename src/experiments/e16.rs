//! E16 — extension: multi-epoch rescheduling.
//!
//! The paper's algorithms color once and commit; re-running the
//! constant-round protocol on residual batteries (each epoch is a fresh
//! instance of the general problem) recovers much of the gap to the
//! centralized greedy while staying fully distributed. This quantifies
//! the gain and its communication price (2 rounds per epoch).

use crate::experiments::table::Table;
use crate::experiments::workloads::{random_batteries, Family};
use domatic_core::bounds::general_upper_bound;
use domatic_core::epochs::epoch_schedule;
use domatic_core::general::{general_schedule, GeneralParams};
use domatic_core::greedy::greedy_general_schedule;
use domatic_schedule::longest_valid_prefix;

/// Runs E16 and returns its tables.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E16 / multi-epoch rescheduling — Algorithm 2 rerun on residual batteries",
        &[
            "family",
            "n",
            "τ",
            "single-shot",
            "epochs (≤20)",
            "#epochs",
            "rounds",
            "greedy (centralized)",
        ],
    );
    for (family, n) in [
        (Family::Gnp { avg_degree: 80.0 }, 300usize),
        (Family::Gnp { avg_degree: 150.0 }, 400),
        (Family::Rgg { avg_degree: 60.0 }, 300),
    ] {
        let g = family.build(n, 41 + n as u64);
        let b = random_batteries(g.n(), 5, 71 + n as u64);
        let params = GeneralParams { c: 3.0, seed: 9 };
        let (raw, _) = general_schedule(&g, &b, &params);
        let single = longest_valid_prefix(&g, &b, &raw, 1).lifetime();
        let multi = epoch_schedule(&g, &b, &params, 20);
        let greedy = greedy_general_schedule(&g, &b).lifetime();
        t.row(vec![
            family.label(),
            n.to_string(),
            general_upper_bound(&g, &b).to_string(),
            single.to_string(),
            multi.schedule.lifetime().to_string(),
            multi.epoch_lifetimes.len().to_string(),
            multi.rounds.to_string(),
            greedy.to_string(),
        ]);
    }
    t.note("each epoch costs 2 communication rounds; the whole multi-epoch run stays O(#epochs), independent of n");
    t.note("epochs add ~10–150% lifetime for a handful of extra rounds, but a gap to the centralized greedy remains:");
    t.note("residual batteries grow skewed, which shrinks each later epoch's certified prefix — the guarantee, not the energy, runs out");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_strictly_improve_on_a_dense_instance() {
        let g = Family::Gnp { avg_degree: 150.0 }.build(400, 41 + 400);
        let b = random_batteries(400, 5, 71 + 400);
        let params = GeneralParams { c: 3.0, seed: 9 };
        let (raw, _) = general_schedule(&g, &b, &params);
        let single = longest_valid_prefix(&g, &b, &raw, 1).lifetime();
        let multi = epoch_schedule(&g, &b, &params, 20);
        assert!(
            multi.schedule.lifetime() > single,
            "epochs {} vs single {}",
            multi.schedule.lifetime(),
            single
        );
        assert!(multi.schedule.lifetime() <= general_upper_bound(&g, &b));
    }
}
