//! E7 — the Feige et al. existential bound, constructively.
//!
//! Feige, Halldórsson, Kortsarz & Srinivasan: every graph has a domatic
//! partition of size `(1 − o(1))(δ+1)/ln Δ`. Our random-coloring + repair
//! construction should achieve the `(δ+1)/(3 ln Δ)` yardstick across
//! families; the table reports achieved vs target vs the `δ+1` ceiling.

use crate::experiments::table::{f2, Table};
use crate::experiments::workloads::Family;
use domatic_core::feige::{feige_partition, feige_target, FeigeParams};
use domatic_graph::generators::regular::{complete, hypercube};

/// Runs E7 and returns its tables.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "E7 / Feige et al. — constructive partition size vs (δ+1)/(3 ln Δ) target",
        &[
            "instance",
            "n",
            "δ+1",
            "target",
            "achieved",
            "achieved/target",
            "sweeps",
        ],
    );
    let instances = vec![
        (
            "gnp(400, d̄=50)".to_string(),
            Family::Gnp { avg_degree: 50.0 }.build(400, 1),
        ),
        (
            "gnp(800, d̄=80)".to_string(),
            Family::Gnp { avg_degree: 80.0 }.build(800, 2),
        ),
        (
            "rgg(400, d̄=50)".to_string(),
            Family::Rgg { avg_degree: 50.0 }.build(400, 3),
        ),
        ("torus8(400)".to_string(), Family::Torus8.build(400, 0)),
        (
            "gnp(600, d̄=200)".to_string(),
            Family::Gnp { avg_degree: 200.0 }.build(600, 4),
        ),
        ("K_100".to_string(), complete(100)),
        ("K_400".to_string(), complete(400)),
        ("Q_10".to_string(), hypercube(10)),
    ];
    for (name, g) in instances {
        let target = feige_target(&g, 3.0);
        let res = feige_partition(
            &g,
            &FeigeParams {
                c: 3.0,
                max_sweeps: 60,
                seed: 5,
            },
        );
        t.row(vec![
            name,
            g.n().to_string(),
            (g.min_degree().unwrap() + 1).to_string(),
            target.to_string(),
            res.classes.len().to_string(),
            f2(res.classes.len() as f64 / target.max(1) as f64),
            res.sweeps.to_string(),
        ]);
    }
    t.note("achieved/target ≥ 1 means the constructive variant matches the existential Ω(δ/ln Δ) bound");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn achieves_target_on_a_dense_instance() {
        let g = Family::Gnp { avg_degree: 50.0 }.build(400, 1);
        let target = feige_target(&g, 3.0);
        let res = feige_partition(
            &g,
            &FeigeParams {
                c: 3.0,
                max_sweeps: 60,
                seed: 5,
            },
        );
        assert!(
            res.classes.len() as u32 + 1 >= target,
            "achieved {} target {}",
            res.classes.len(),
            target
        );
    }
}
