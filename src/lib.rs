//! # domatic
//!
//! A Rust reproduction of **Moscibroda & Wattenhofer, “Maximizing the
//! Lifetime of Dominating Sets”, IPDPS 2005** — randomized, local
//! approximation algorithms that schedule disjoint dominating sets so a
//! battery-powered network stays clustered for as long as possible.
//!
//! This umbrella crate re-exports the workspace:
//!
//! - [`graph`] *(domatic-graph)* — CSR graphs, generators, domination
//!   predicates, MIS;
//! - [`lp`] *(domatic-lp)* — exact `L_OPT` via a from-scratch simplex over
//!   enumerated minimal dominating sets;
//! - [`schedule`] *(domatic-schedule)* — schedule types, energy ledgers,
//!   validation;
//! - [`core`] *(domatic-core)* — the paper's Algorithms 1–3, the L_OPT
//!   bounds, greedy/Feige baselines, parallel restarts;
//! - [`distsim`] *(domatic-distsim)* — the algorithms as genuinely local
//!   protocols on a synchronous round engine;
//! - [`netsim`] *(domatic-netsim)* — end-to-end sensor-network lifetime
//!   simulation;
//! - [`server`] *(domatic-server)* — the batching, caching JSON-lines
//!   solve service behind `domatic serve`.
//!
//! ## Quickstart
//!
//! ```
//! use domatic::prelude::*;
//!
//! // A 200-node sensor field, batteries good for 3 active slots.
//! let gg = graph::generators::geometric::random_geometric(
//!     200,
//!     graph::generators::geometric::radius_for_avg_degree(200, 25.0),
//!     42,
//! );
//! let g = gg.graph;
//! let b = 3u64;
//!
//! // Algorithm 1: one message round, then everyone picks a color.
//! let (raw, coloring) = core::uniform::uniform_schedule(
//!     &g, b, &core::uniform::UniformParams::default());
//!
//! // Validate (the guarantee is w.h.p.) and compare against Lemma 4.1.
//! let batteries = schedule::Batteries::uniform(g.n(), b);
//! let valid = schedule::longest_valid_prefix(&g, &batteries, &raw, 1);
//! let bound = core::bounds::uniform_upper_bound(&g, b);
//! assert!(valid.lifetime() >= b * coloring.guaranteed_classes as u64);
//! assert!(valid.lifetime() <= bound);
//! ```

pub mod experiments;

pub use domatic_core as core;
pub use domatic_distsim as distsim;
pub use domatic_graph as graph;
pub use domatic_lp as lp;
pub use domatic_netsim as netsim;
pub use domatic_schedule as schedule;
pub use domatic_server as server;
pub use domatic_viz as viz;

/// One-line import for examples and downstream code.
pub mod prelude {
    pub use crate::{core, distsim, graph, lp, netsim, schedule, viz};
    pub use domatic_graph::{Graph, NodeId, NodeSet};
    pub use domatic_schedule::{Batteries, Schedule};
}
